package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperThinkTime(t *testing.T) {
	tt := PaperThinkTime()
	if tt.Mean != 1 || tt.Floor != 0.1 {
		t.Errorf("paper think time = %+v", tt)
	}
	if err := tt.Validate(); err != nil {
		t.Error(err)
	}
}

func TestThinkTimeValidate(t *testing.T) {
	if err := (ThinkTime{Mean: 0, Floor: 0.1}).Validate(); err == nil {
		t.Error("zero mean accepted")
	}
	if err := (ThinkTime{Mean: 1, Floor: -0.1}).Validate(); err == nil {
		t.Error("negative floor accepted")
	}
	if err := (ThinkTime{Mean: 0.001, Floor: 10}).Validate(); err == nil {
		t.Error("floor ≫ mean accepted")
	}
}

func TestThinkTimeSampleRespectsFloor(t *testing.T) {
	tt := PaperThinkTime()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		if s := tt.Sample(rng); s < 0.1 {
			t.Fatalf("sample %v below floor", s)
		}
	}
}

func TestEffectiveMeanAnalytic(t *testing.T) {
	tt := PaperThinkTime()
	want := 0.1 + math.Exp(-0.1)
	if math.Abs(tt.EffectiveMean()-want) > 1e-12 {
		t.Errorf("EffectiveMean = %v, want %v", tt.EffectiveMean(), want)
	}
	// Zero floor reduces to the plain exponential mean.
	plain := ThinkTime{Mean: 2, Floor: 0}
	if math.Abs(plain.EffectiveMean()-2) > 1e-12 {
		t.Errorf("zero-floor mean = %v, want 2", plain.EffectiveMean())
	}
}

func TestEffectiveMeanMatchesSampling(t *testing.T) {
	tt := PaperThinkTime()
	rng := rand.New(rand.NewSource(2))
	sum := 0.0
	const n = 400000
	for i := 0; i < n; i++ {
		sum += tt.Sample(rng)
	}
	emp := sum / n
	if math.Abs(emp-tt.EffectiveMean()) > 0.01 {
		t.Errorf("empirical mean %v vs analytic %v", emp, tt.EffectiveMean())
	}
}

func TestEffectiveVarianceMatchesSampling(t *testing.T) {
	tt := PaperThinkTime()
	rng := rand.New(rand.NewSource(3))
	var sum, sumSq float64
	const n = 400000
	for i := 0; i < n; i++ {
		s := tt.Sample(rng)
		sum += s
		sumSq += s * s
	}
	mean := sum / n
	empVar := sumSq/n - mean*mean
	if math.Abs(empVar-tt.EffectiveVariance()) > 0.02 {
		t.Errorf("empirical variance %v vs analytic %v", empVar, tt.EffectiveVariance())
	}
	// Zero floor reduces to Exp variance = mean².
	plain := ThinkTime{Mean: 3, Floor: 0}
	if math.Abs(plain.EffectiveVariance()-9) > 1e-9 {
		t.Errorf("zero-floor variance = %v, want 9", plain.EffectiveVariance())
	}
}

func TestRequestRate(t *testing.T) {
	tt := PaperThinkTime()
	if math.Abs(tt.RequestRate()*tt.EffectiveMean()-1) > 1e-12 {
		t.Error("rate × mean should be 1")
	}
}

func TestRequestCountExactMatchesRate(t *testing.T) {
	tt := PaperThinkTime()
	rng := rand.New(rand.NewSource(4))
	users, dt := 200, 30.0
	total := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		c, err := RequestCountExact(users, dt, tt, rng)
		if err != nil {
			t.Fatal(err)
		}
		total += c
	}
	avg := float64(total) / trials
	want := float64(users) * dt / tt.EffectiveMean()
	if math.Abs(avg-want)/want > 0.05 {
		t.Errorf("exact count avg %v, want ≈ %v", avg, want)
	}
}

func TestRequestCountApproxMatchesExact(t *testing.T) {
	tt := PaperThinkTime()
	rng := rand.New(rand.NewSource(5))
	users, dt := 400, 30.0
	var sumApprox, sumExact float64
	const trials = 40
	for i := 0; i < trials; i++ {
		a, err := RequestCount(users, dt, tt, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := RequestCountExact(users, dt, tt, rng)
		if err != nil {
			t.Fatal(err)
		}
		sumApprox += float64(a)
		sumExact += float64(e)
	}
	if math.Abs(sumApprox-sumExact)/sumExact > 0.05 {
		t.Errorf("approx mean %v vs exact mean %v", sumApprox/trials, sumExact/trials)
	}
}

func TestRequestCountEdgeCases(t *testing.T) {
	tt := PaperThinkTime()
	rng := rand.New(rand.NewSource(6))
	if c, err := RequestCount(0, 30, tt, rng); err != nil || c != 0 {
		t.Errorf("zero users: %d, %v", c, err)
	}
	if _, err := RequestCount(-1, 30, tt, rng); err == nil {
		t.Error("negative users accepted")
	}
	if _, err := RequestCount(10, 0, tt, rng); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := RequestCount(10, 30, ThinkTime{Mean: 0}, rng); err == nil {
		t.Error("invalid think time accepted")
	}
	if _, err := RequestCountExact(-1, 30, tt, rng); err == nil {
		t.Error("exact: negative users accepted")
	}
	if _, err := RequestCountExact(10, -1, tt, rng); err == nil {
		t.Error("exact: negative dt accepted")
	}
	if _, err := RequestCountExact(10, 30, ThinkTime{Mean: -1}, rng); err == nil {
		t.Error("exact: invalid think time accepted")
	}
	if c, err := RequestCountExact(0, 30, tt, rng); err != nil || c != 0 {
		t.Errorf("exact zero users: %d, %v", c, err)
	}
}

// Property: request counts are non-negative and scale roughly linearly with
// the user population.
func TestPropRequestCountScales(t *testing.T) {
	tt := PaperThinkTime()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		users := 50 + rng.Intn(400)
		c1, err := RequestCount(users, 30, tt, rng)
		if err != nil || c1 < 0 {
			return false
		}
		c2, err := RequestCount(users*2, 30, tt, rng)
		if err != nil || c2 < 0 {
			return false
		}
		ratio := float64(c2) / float64(c1)
		return ratio > 1.5 && ratio < 2.7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
