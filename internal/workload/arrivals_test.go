package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewArrivalProcessValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		name     string
		rate, cv float64
		rng      *rand.Rand
	}{
		{"zero rate", 0, 1, rng},
		{"negative rate", -5, 1, rng},
		{"nan rate", math.NaN(), 1, rng},
		{"inf rate", math.Inf(1), 1, rng},
		{"zero cv", 100, 0, rng},
		{"nan cv", 100, math.NaN(), rng},
		{"nil rng", 100, 1, nil},
	} {
		if _, err := NewArrivalProcess(tc.rate, tc.cv, tc.rng); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

// TestArrivalProcessMoments checks the sampler hits the requested mean rate
// and CV for both the Poisson (CV=1) and the bursty (CV=3.5, k≈0.082) regime.
func TestArrivalProcessMoments(t *testing.T) {
	const n = 200_000
	for _, tc := range []struct {
		name     string
		rate, cv float64
	}{
		{"poisson", 200, 1.0},
		{"bursty-cv3.5", 200, 3.5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewArrivalProcess(tc.rate, tc.cv, rand.New(rand.NewSource(42)))
			if err != nil {
				t.Fatal(err)
			}
			var sum, sumSq float64
			for i := 0; i < n; i++ {
				g := p.NextGap()
				if g < 0 {
					t.Fatalf("negative gap %v", g)
				}
				sum += g
				sumSq += g * g
			}
			mean := sum / n
			variance := sumSq/n - mean*mean
			cv := math.Sqrt(variance) / mean
			wantMean := 1 / tc.rate
			if math.Abs(mean-wantMean) > 0.05*wantMean {
				t.Errorf("mean gap = %v, want %v ±5%%", mean, wantMean)
			}
			if math.Abs(cv-tc.cv) > 0.1*tc.cv {
				t.Errorf("gap CV = %v, want %v ±10%%", cv, tc.cv)
			}
		})
	}
}

func TestArrivalProcessDeterministic(t *testing.T) {
	mk := func() *ArrivalProcess {
		p, err := NewArrivalProcess(150, 3.5, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		if ga, gb := a.NextGapNs(), b.NextGapNs(); ga != gb {
			t.Fatalf("draw %d: %d != %d — same seed must replay identically", i, ga, gb)
		}
	}
}

func TestNextGapNsNonNegative(t *testing.T) {
	p, err := NewArrivalProcess(1e6, 3.5, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if ns := p.NextGapNs(); ns < 0 {
			t.Fatalf("NextGapNs = %d, want ≥ 0", ns)
		}
	}
}
