package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/cloud"
	"repro/internal/markov"
)

// DemandTrace is a sampled resource-demand trajectory of one VM: its ON-OFF
// state and the corresponding demand (R_b or R_p) at each interval — the data
// behind Fig. 1.
type DemandTrace struct {
	VM     cloud.VM
	States []markov.State
	Demand []float64
}

// Len returns the number of intervals in the trace.
func (t DemandTrace) Len() int { return len(t.States) }

// PeakFraction returns the fraction of intervals spent at peak demand.
func (t DemandTrace) PeakFraction() float64 { return markov.OnFraction(t.States) }

// GenerateDemandTrace samples a demand trajectory of the given length. The
// start state is drawn from the chain's stationary distribution so the trace
// begins in steady state.
func GenerateDemandTrace(vm cloud.VM, length int, rng *rand.Rand) (DemandTrace, error) {
	if err := vm.Validate(); err != nil {
		return DemandTrace{}, err
	}
	if length < 1 {
		return DemandTrace{}, fmt.Errorf("workload: trace length %d, want ≥ 1", length)
	}
	chain, err := vm.Chain()
	if err != nil {
		return DemandTrace{}, err
	}
	states := chain.Trace(chain.SampleStationary(rng), length, rng)
	demand := make([]float64, length)
	for i, s := range states {
		demand[i] = vm.Demand(s)
	}
	return DemandTrace{VM: vm, States: states, Demand: demand}, nil
}

// RequestTrace is a sampled request-count trajectory of one web-server VM
// (Fig. 8): the ON-OFF state, the active user population, and the number of
// requests generated in each interval.
type RequestTrace struct {
	Entry    TableIEntry
	Interval float64 // seconds per interval (σ)
	States   []markov.State
	Users    []int
	Requests []int
}

// Len returns the number of intervals in the trace.
func (t RequestTrace) Len() int { return len(t.States) }

// GenerateRequestTrace samples a request workload for a Table I entry: the
// VM's ON-OFF chain modulates the user population between NormalUsers and
// PeakUsers, and each interval's request count is drawn from the think-time
// renewal model. exact selects per-user renewal simulation (faithful but
// O(users·dt) per interval) over the Gaussian approximation.
func GenerateRequestTrace(entry TableIEntry, pOn, pOff float64, length int, interval float64, tt ThinkTime, exact bool, rng *rand.Rand) (RequestTrace, error) {
	if length < 1 {
		return RequestTrace{}, fmt.Errorf("workload: trace length %d, want ≥ 1", length)
	}
	if interval <= 0 {
		return RequestTrace{}, fmt.Errorf("workload: interval %v, want > 0", interval)
	}
	chain, err := markov.NewOnOff(pOn, pOff)
	if err != nil {
		return RequestTrace{}, err
	}
	if err := tt.Validate(); err != nil {
		return RequestTrace{}, err
	}
	states := chain.Trace(chain.SampleStationary(rng), length, rng)
	trace := RequestTrace{
		Entry:    entry,
		Interval: interval,
		States:   states,
		Users:    make([]int, length),
		Requests: make([]int, length),
	}
	for i, s := range states {
		users := entry.NormalUsers()
		if s == markov.On {
			users = entry.PeakUsers()
		}
		trace.Users[i] = users
		var count int
		if exact {
			count, err = RequestCountExact(users, interval, tt, rng)
		} else {
			count, err = RequestCount(users, interval, tt, rng)
		}
		if err != nil {
			return RequestTrace{}, err
		}
		trace.Requests[i] = count
	}
	return trace, nil
}

// FleetStates tracks the joint ON-OFF evolution of a whole fleet, advancing
// every VM's chain one interval at a time — the demand side of the
// datacenter simulation.
type FleetStates struct {
	vms    []cloud.VM
	chains []markov.OnOff
	states map[int]markov.State
}

// NewFleetStates initialises every VM in its stationary state.
func NewFleetStates(vms []cloud.VM, rng *rand.Rand) (*FleetStates, error) {
	if err := cloud.ValidateVMs(vms); err != nil {
		return nil, err
	}
	f := &FleetStates{
		vms:    append([]cloud.VM(nil), vms...),
		chains: make([]markov.OnOff, len(vms)),
		states: make(map[int]markov.State, len(vms)),
	}
	for i, vm := range f.vms {
		chain, err := vm.Chain()
		if err != nil {
			return nil, err
		}
		f.chains[i] = chain
		f.states[vm.ID] = chain.SampleStationary(rng)
	}
	return f, nil
}

// AllOff forces every VM to OFF — the paper's t = 0 condition for Eq. (3),
// where the initial placement is checked against normal workload.
func (f *FleetStates) AllOff() {
	for id := range f.states {
		f.states[id] = markov.Off
	}
}

// Step advances every VM one interval.
func (f *FleetStates) Step(rng *rand.Rand) {
	for i, vm := range f.vms {
		f.states[vm.ID] = f.chains[i].Step(f.states[vm.ID], rng)
	}
}

// States returns the live state map (VM id → state). Callers must not
// mutate it; it is shared for efficiency in the simulation hot loop.
func (f *FleetStates) States() map[int]markov.State { return f.states }

// State returns one VM's current state.
func (f *FleetStates) State(vmID int) (markov.State, bool) {
	s, ok := f.states[vmID]
	return s, ok
}

// Add registers a new VM mid-run (an arrival in an open system), starting in
// the given state. It rejects duplicates and invalid specs.
func (f *FleetStates) Add(vm cloud.VM, start markov.State) error {
	if err := vm.Validate(); err != nil {
		return err
	}
	if _, exists := f.states[vm.ID]; exists {
		return fmt.Errorf("workload: VM %d already tracked", vm.ID)
	}
	chain, err := vm.Chain()
	if err != nil {
		return err
	}
	f.vms = append(f.vms, vm)
	f.chains = append(f.chains, chain)
	f.states[vm.ID] = start
	return nil
}

// Remove forgets a VM (a departure). It returns an error for unknown ids.
func (f *FleetStates) Remove(vmID int) error {
	if _, exists := f.states[vmID]; !exists {
		return fmt.Errorf("workload: VM %d not tracked", vmID)
	}
	delete(f.states, vmID)
	for i, vm := range f.vms {
		if vm.ID == vmID {
			f.vms = append(f.vms[:i], f.vms[i+1:]...)
			f.chains = append(f.chains[:i], f.chains[i+1:]...)
			break
		}
	}
	return nil
}

// Size returns the number of tracked VMs.
func (f *FleetStates) Size() int { return len(f.vms) }

// OnCount returns the number of VMs currently ON.
func (f *FleetStates) OnCount() int {
	n := 0
	for _, s := range f.states {
		if s == markov.On {
			n++
		}
	}
	return n
}
