package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cloud"
	"repro/internal/markov"
)

func traceVM() cloud.VM {
	return cloud.VM{ID: 0, POn: 0.01, POff: 0.09, Rb: 10, Re: 8}
}

func TestGenerateDemandTraceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, err := GenerateDemandTrace(traceVM(), 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 || len(tr.Demand) != 500 {
		t.Fatalf("trace length %d/%d", tr.Len(), len(tr.Demand))
	}
	for i, s := range tr.States {
		want := 10.0
		if s == markov.On {
			want = 18
		}
		if tr.Demand[i] != want {
			t.Fatalf("interval %d: demand %v for state %v", i, tr.Demand[i], s)
		}
	}
}

func TestGenerateDemandTraceErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateDemandTrace(traceVM(), 0, rng); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := GenerateDemandTrace(cloud.VM{ID: 0, POn: 0, POff: 0.1, Rb: 1, Re: 1}, 10, rng); err == nil {
		t.Error("invalid VM accepted")
	}
}

func TestDemandTracePeakFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, err := GenerateDemandTrace(traceVM(), 300000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.PeakFraction()-0.1) > 0.01 {
		t.Errorf("peak fraction %v, want ≈ 0.1", tr.PeakFraction())
	}
}

func TestGenerateRequestTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	entry := TableIEntry{PatternEqual, ClassSmall, ClassSmall}
	tr, err := GenerateRequestTrace(entry, 0.01, 0.09, 200, 30, PaperThinkTime(), false, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 200 {
		t.Fatalf("trace length %d", tr.Len())
	}
	rate := PaperThinkTime().RequestRate()
	for i := range tr.States {
		wantUsers := 400
		if tr.States[i] == markov.On {
			wantUsers = 800
		}
		if tr.Users[i] != wantUsers {
			t.Fatalf("interval %d: users %d for state %v", i, tr.Users[i], tr.States[i])
		}
		// Requests should be near users·rate·30 (±50% is generous noise).
		want := float64(wantUsers) * rate * 30
		if math.Abs(float64(tr.Requests[i])-want) > want*0.5 {
			t.Fatalf("interval %d: requests %d far from %v", i, tr.Requests[i], want)
		}
	}
}

func TestGenerateRequestTraceExactAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	entry := TableIEntry{PatternEqual, ClassSmall, ClassSmall}
	exact, err := GenerateRequestTrace(entry, 0.01, 0.09, 30, 10, PaperThinkTime(), true, rng)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := GenerateRequestTrace(entry, 0.01, 0.09, 30, 10, PaperThinkTime(), false, rng)
	if err != nil {
		t.Fatal(err)
	}
	meanOf := func(xs []int) float64 {
		s := 0
		for _, x := range xs {
			s += x
		}
		return float64(s) / float64(len(xs))
	}
	me, ma := meanOf(exact.Requests), meanOf(approx.Requests)
	if math.Abs(me-ma)/me > 0.25 {
		t.Errorf("exact mean %v vs approx mean %v", me, ma)
	}
}

func TestGenerateRequestTraceErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	entry := TableIEntry{PatternEqual, ClassSmall, ClassSmall}
	if _, err := GenerateRequestTrace(entry, 0.01, 0.09, 0, 30, PaperThinkTime(), false, rng); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := GenerateRequestTrace(entry, 0.01, 0.09, 10, 0, PaperThinkTime(), false, rng); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := GenerateRequestTrace(entry, 0, 0.09, 10, 30, PaperThinkTime(), false, rng); err == nil {
		t.Error("invalid chain accepted")
	}
	if _, err := GenerateRequestTrace(entry, 0.01, 0.09, 10, 30, ThinkTime{Mean: 0}, false, rng); err == nil {
		t.Error("invalid think time accepted")
	}
}

func TestFleetStates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vms := []cloud.VM{traceVM(), {ID: 1, POn: 0.01, POff: 0.09, Rb: 5, Re: 3}}
	fs, err := NewFleetStates(vms, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.States()) != 2 {
		t.Fatalf("states map has %d entries", len(fs.States()))
	}
	fs.AllOff()
	if fs.OnCount() != 0 {
		t.Error("AllOff left VMs ON")
	}
	if s, ok := fs.State(0); !ok || s != markov.Off {
		t.Error("State(0) should be OFF after AllOff")
	}
	if _, ok := fs.State(99); ok {
		t.Error("unknown VM id should not resolve")
	}
	// Advance many steps; states must stay valid and ON fraction sane.
	onSteps, total := 0, 0
	for i := 0; i < 50000; i++ {
		fs.Step(rng)
		onSteps += fs.OnCount()
		total += 2
	}
	frac := float64(onSteps) / float64(total)
	if math.Abs(frac-0.1) > 0.02 {
		t.Errorf("fleet ON fraction %v, want ≈ 0.1", frac)
	}
}

func TestNewFleetStatesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := NewFleetStates([]cloud.VM{{ID: 0, POn: 0, POff: 0.1, Rb: 1, Re: 1}}, rng); err == nil {
		t.Error("invalid fleet accepted")
	}
	dup := []cloud.VM{traceVM(), traceVM()}
	if _, err := NewFleetStates(dup, rng); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestFleetStatesAddRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	fs, err := NewFleetStates([]cloud.VM{traceVM()}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Size() != 1 {
		t.Fatalf("Size = %d", fs.Size())
	}
	newVM := cloud.VM{ID: 5, POn: 0.01, POff: 0.09, Rb: 3, Re: 2}
	if err := fs.Add(newVM, markov.Off); err != nil {
		t.Fatal(err)
	}
	if fs.Size() != 2 {
		t.Errorf("Size after add = %d", fs.Size())
	}
	if s, ok := fs.State(5); !ok || s != markov.Off {
		t.Error("added VM not tracked in OFF")
	}
	// Duplicates and invalid specs rejected.
	if err := fs.Add(newVM, markov.Off); err == nil {
		t.Error("duplicate add accepted")
	}
	if err := fs.Add(cloud.VM{ID: 9, POn: 0, POff: 0.1, Rb: 1, Re: 1}, markov.Off); err == nil {
		t.Error("invalid VM accepted")
	}
	// Stepping after add covers both VMs.
	fs.Step(rng)
	if len(fs.States()) != 2 {
		t.Error("states map wrong size after step")
	}
	if err := fs.Remove(5); err != nil {
		t.Fatal(err)
	}
	if fs.Size() != 1 {
		t.Errorf("Size after remove = %d", fs.Size())
	}
	if _, ok := fs.State(5); ok {
		t.Error("removed VM still tracked")
	}
	if err := fs.Remove(5); err == nil {
		t.Error("double remove accepted")
	}
	// Remaining VM still steps fine.
	fs.Step(rng)
	if _, ok := fs.State(0); !ok {
		t.Error("remaining VM lost after remove+step")
	}
}
