package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cloud"
	"repro/internal/markov"
)

func hashedTestVMs(n int) []cloud.VM {
	vms := make([]cloud.VM, n)
	for i := range vms {
		vms[i] = cloud.VM{ID: i + 1, Rb: 1, Re: 1, POn: 0.3, POff: 0.4}
	}
	return vms
}

func TestHashedFleetDeterministicAcrossInstances(t *testing.T) {
	vms := hashedTestVMs(64)
	a, err := NewHashedFleet(vms, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHashedFleet(vms, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct rngs to prove the parameter is ignored.
	rngA, rngB := rand.New(rand.NewSource(1)), rand.New(rand.NewSource(999))
	for step := 0; step < 50; step++ {
		a.Step(rngA)
		b.Step(rngB)
		for _, vm := range vms {
			if a.States()[vm.ID] != b.States()[vm.ID] {
				t.Fatalf("step %d VM %d: states diverged", step, vm.ID)
			}
		}
	}
	c, err := NewHashedFleet(vms, 43)
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for step := 0; step < 50 && !diverged; step++ {
		c.Step(rngA)
		for _, vm := range vms {
			if c.States()[vm.ID] != a.States()[vm.ID] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("seed 43 reproduced seed 42's trajectories")
	}
}

func TestHashedFleetVMsIndependent(t *testing.T) {
	// Removing half the fleet must not change the survivors' trajectories —
	// the property that makes sharded stepping shard-count-invariant.
	vms := hashedTestVMs(32)
	full, err := NewHashedFleet(vms, 7)
	if err != nil {
		t.Fatal(err)
	}
	half, err := NewHashedFleet(vms[:16], 7)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 40; step++ {
		full.Step(nil)
		half.Step(nil)
		for _, vm := range vms[:16] {
			if full.States()[vm.ID] != half.States()[vm.ID] {
				t.Fatalf("step %d VM %d: trajectory depends on fleet membership", step, vm.ID)
			}
		}
	}
}

func TestHashedFleetStationaryFraction(t *testing.T) {
	// Over a long horizon the ON fraction should approach the chain's
	// stationary π_on = POn/(POn+POff).
	vms := hashedTestVMs(200)
	f, err := NewHashedFleet(vms, 11)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 500
	var on, total int
	for step := 0; step < steps; step++ {
		f.Step(nil)
		if step < 50 {
			continue // burn-in from the all-OFF start
		}
		for _, vm := range vms {
			total++
			if f.States()[vm.ID] == markov.On {
				on++
			}
		}
	}
	want := 0.3 / (0.3 + 0.4)
	got := float64(on) / float64(total)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("ON fraction %.4f, want %.4f ± 0.02", got, want)
	}
}

func TestHashedFleetAddRemove(t *testing.T) {
	vms := hashedTestVMs(4)
	f, err := NewHashedFleet(vms, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4 {
		t.Fatalf("Size() = %d, want 4", f.Size())
	}
	if err := f.Add(vms[0], markov.Off); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	extra := cloud.VM{ID: 99, Rb: 1, Re: 1, POn: 0.5, POff: 0.5}
	if err := f.Add(extra, markov.On); err != nil {
		t.Fatal(err)
	}
	if f.States()[99] != markov.On {
		t.Fatal("added VM not in requested start state")
	}
	if err := f.Remove(99); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove(99); err == nil {
		t.Fatal("Remove of unknown VM accepted")
	}
	if f.Size() != 4 {
		t.Fatalf("Size() = %d after add+remove, want 4", f.Size())
	}
	f.AllOff()
	for _, vm := range vms {
		if f.States()[vm.ID] != markov.Off {
			t.Fatal("AllOff left a VM on")
		}
	}
}

func TestHashedFleetRejectsInvalidVMs(t *testing.T) {
	if _, err := NewHashedFleet([]cloud.VM{{ID: 1}, {ID: 1}}, 0); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	f, err := NewHashedFleet(hashedTestVMs(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Add(cloud.VM{ID: -5}, markov.Off); err == nil {
		t.Fatal("invalid VM accepted by Add")
	}
}
