package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/markov"
)

// TraceReplay is a sim.DemandSource that replays recorded per-VM state
// traces instead of sampling the ON-OFF model — the evaluation mode for the
// record → fit → consolidate → validate workflow, where the placement was
// computed from *fitted* parameters but is judged against the *real* trace.
type TraceReplay struct {
	traces map[int][]markov.State
	states map[int]markov.State
	pos    int
	loop   bool
}

// NewTraceReplay builds a replay source. Every trace must be non-empty; with
// loop=false, traces clamp at their final state once exhausted, with
// loop=true they wrap around. States start at each trace's first entry.
func NewTraceReplay(traces map[int][]markov.State, loop bool) (*TraceReplay, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("workload: no traces to replay")
	}
	r := &TraceReplay{
		traces: make(map[int][]markov.State, len(traces)),
		states: make(map[int]markov.State, len(traces)),
		loop:   loop,
	}
	for id, trace := range traces {
		if len(trace) == 0 {
			return nil, fmt.Errorf("workload: VM %d has an empty trace", id)
		}
		copied := make([]markov.State, len(trace))
		copy(copied, trace)
		r.traces[id] = copied
		r.states[id] = copied[0]
	}
	return r, nil
}

// FromDemandTraces builds a replay source from demand traces keyed by their
// VM specs (as produced by GenerateDemandTrace or monitoring ingestion).
func FromDemandTraces(traces []DemandTrace, loop bool) (*TraceReplay, error) {
	m := make(map[int][]markov.State, len(traces))
	for _, tr := range traces {
		if _, dup := m[tr.VM.ID]; dup {
			return nil, fmt.Errorf("workload: duplicate trace for VM %d", tr.VM.ID)
		}
		m[tr.VM.ID] = tr.States
	}
	return NewTraceReplay(m, loop)
}

// Step advances the replay cursor one interval. The rng is unused — replay is
// deterministic — but kept for the sim.DemandSource contract.
func (r *TraceReplay) Step(_ *rand.Rand) {
	r.pos++
	for id, trace := range r.traces {
		idx := r.pos
		if idx >= len(trace) {
			if r.loop {
				idx %= len(trace)
			} else {
				idx = len(trace) - 1
			}
		}
		r.states[id] = trace[idx]
	}
}

// States returns the live state map (VM id → state).
func (r *TraceReplay) States() map[int]markov.State { return r.states }

// Pos returns the current replay cursor.
func (r *TraceReplay) Pos() int { return r.pos }

// Len returns the length of the shortest trace — the horizon over which the
// replay is fully faithful without looping or clamping.
func (r *TraceReplay) Len() int {
	min := -1
	for _, trace := range r.traces {
		if min == -1 || len(trace) < min {
			min = len(trace)
		}
	}
	return min
}
