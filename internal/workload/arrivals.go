package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// ArrivalProcess draws interarrival gaps for an open arrival stream with a
// target mean rate and burstiness knob. CV = 1 is Poisson; the paper's bursty
// regimes use CV ≈ 3.5 (SNIPPETS H16), where the Gamma shape k = 1/CV² ≈ 0.08
// concentrates mass near zero — long idle stretches punctuated by dense
// clumps — which is exactly the traffic an admission token bucket must smooth
// rather than shed.
type ArrivalProcess struct {
	meanGap float64 // mean interarrival time in seconds
	shape   float64 // Gamma shape k = 1/CV²
	rng     *rand.Rand
}

// NewArrivalProcess builds a Gamma-renewal arrival stream with the given mean
// rate (arrivals per second, > 0) and interarrival coefficient of variation
// (> 0). CV = 1 reduces to exponential gaps (Poisson arrivals).
func NewArrivalProcess(ratePerSec, cv float64, rng *rand.Rand) (*ArrivalProcess, error) {
	if !(ratePerSec > 0) || math.IsInf(ratePerSec, 0) {
		return nil, fmt.Errorf("workload: arrival rate = %v, want > 0", ratePerSec)
	}
	if !(cv > 0) || math.IsInf(cv, 0) {
		return nil, fmt.Errorf("workload: arrival CV = %v, want > 0", cv)
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: arrival process needs a seeded *rand.Rand")
	}
	return &ArrivalProcess{
		meanGap: 1 / ratePerSec,
		shape:   1 / (cv * cv),
		rng:     rng,
	}, nil
}

// NextGap draws the next interarrival gap in seconds: Gamma(k, θ) with
// k = 1/CV² and θ chosen so the mean is 1/rate.
func (p *ArrivalProcess) NextGap() float64 {
	theta := p.meanGap / p.shape
	return gammaSample(p.rng, p.shape) * theta
}

// NextGapNs is NextGap in integer nanoseconds, floored at 0.
func (p *ArrivalProcess) NextGapNs() int64 {
	ns := p.NextGap() * 1e9
	if ns <= 0 {
		return 0
	}
	if ns >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(ns)
}

// gammaSample draws Gamma(k, 1) via Marsaglia–Tsang squeeze; the k < 1 case
// uses the boost Gamma(k) = Gamma(k+1) · U^(1/k).
func gammaSample(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
