package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// ThinkTime models a user's pause between requests: exponentially distributed
// with the given mean but floored at Floor, because "in reality the user
// think time cannot be infinitely small" (§V-D: mean = 1, floor = 0.1).
type ThinkTime struct {
	Mean  float64 // mean of the underlying exponential, seconds
	Floor float64 // lower clamp, seconds
}

// PaperThinkTime returns the §V-D setting: Exp(mean 1) clamped at 0.1 s.
func PaperThinkTime() ThinkTime { return ThinkTime{Mean: 1, Floor: 0.1} }

// Validate checks the parameters.
func (tt ThinkTime) Validate() error {
	if tt.Mean <= 0 {
		return fmt.Errorf("workload: think-time mean %v, want > 0", tt.Mean)
	}
	if tt.Floor < 0 || tt.Floor > tt.Mean*100 {
		return fmt.Errorf("workload: think-time floor %v unreasonable for mean %v", tt.Floor, tt.Mean)
	}
	return nil
}

// Sample draws one think time: max(Floor, Exp(Mean)).
func (tt ThinkTime) Sample(rng *rand.Rand) float64 {
	return math.Max(tt.Floor, rng.ExpFloat64()*tt.Mean)
}

// EffectiveMean returns E[max(Floor, X)] for X ~ Exp(Mean):
// Floor + Mean·exp(−Floor/Mean).
func (tt ThinkTime) EffectiveMean() float64 {
	return tt.Floor + tt.Mean*math.Exp(-tt.Floor/tt.Mean)
}

// EffectiveVariance returns Var[max(Floor, X)] for X ~ Exp(Mean), from
// E[Y²] = Floor² + e^{−Floor/Mean}·(2·Floor·Mean + 2·Mean²).
func (tt ThinkTime) EffectiveVariance() float64 {
	a, m := tt.Floor, tt.Mean
	ey := tt.EffectiveMean()
	ey2 := a*a + math.Exp(-a/m)*(2*a*m+2*m*m)
	return ey2 - ey*ey
}

// RequestRate returns the long-run requests per second per user:
// 1 / EffectiveMean.
func (tt ThinkTime) RequestRate() float64 { return 1 / tt.EffectiveMean() }

// RequestCountExact simulates `users` independent renewal processes for dt
// seconds and returns the total request count — the faithful §V-D generator,
// used for traces and validation. Each user's first request occurs after an
// initial residual think time.
func RequestCountExact(users int, dt float64, tt ThinkTime, rng *rand.Rand) (int, error) {
	if err := tt.Validate(); err != nil {
		return 0, err
	}
	if users < 0 || dt <= 0 {
		return 0, fmt.Errorf("workload: invalid users=%d dt=%v", users, dt)
	}
	total := 0
	for u := 0; u < users; u++ {
		t := tt.Sample(rng) * rng.Float64() // residual of the first gap
		for t < dt {
			total++
			t += tt.Sample(rng)
		}
	}
	return total, nil
}

// RequestCount approximates the same total by the renewal central limit
// theorem: N(users·dt/μ, users·dt·σ²/μ³) with μ, σ² the effective think-time
// moments. It is the generator the fleet-scale simulation uses, where exact
// per-user renewal simulation (≈ users·dt draws per VM per interval) would
// dominate the run time. Counts are clamped at 0.
func RequestCount(users int, dt float64, tt ThinkTime, rng *rand.Rand) (int, error) {
	if err := tt.Validate(); err != nil {
		return 0, err
	}
	if users < 0 || dt <= 0 {
		return 0, fmt.Errorf("workload: invalid users=%d dt=%v", users, dt)
	}
	if users == 0 {
		return 0, nil
	}
	mu := tt.EffectiveMean()
	sigma2 := tt.EffectiveVariance()
	mean := float64(users) * dt / mu
	stddev := math.Sqrt(float64(users) * dt * sigma2 / (mu * mu * mu))
	count := mean + stddev*rng.NormFloat64()
	if count < 0 {
		count = 0
	}
	return int(math.Round(count)), nil
}
