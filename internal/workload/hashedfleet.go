package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/cloud"
	"repro/internal/markov"
)

// HashedFleet is a demand source whose ON-OFF transitions are pure functions
// of (seed, VM id, interval): each step draws its uniform variate from a
// splitmix64 hash instead of a shared sequential RNG. Two properties follow.
// First, a VM's trajectory is independent of every other VM's — adding,
// removing, or re-partitioning VMs never perturbs the rest of the fleet,
// which is what makes sharded stepping reproducible at any shard count.
// Second, any (vm, t) state can be recomputed in isolation, so fleets of
// millions of VMs need no per-VM RNG state. This is the same
// decision-is-a-pure-function discipline internal/faults uses for its
// deterministic fault schedules.
//
// The marginal per-step law matches markov.OnOff exactly: from OFF the VM
// turns ON with probability POn, from ON it turns OFF with probability POff.
type HashedFleet struct {
	vms    []cloud.VM
	states map[int]markov.State
	seed   int64
	t      int // intervals stepped so far
}

// streamHashedFleet domain-separates this source's draws from other
// splitmix64 consumers sharing a seed.
const streamHashedFleet = 0xd6e8feb86659fd93

// hfMix is the splitmix64 finaliser — a bijective avalanche over 64 bits.
func hfMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hfUniform hashes (seed, vmID, t) to a float64 in [0, 1).
func hfUniform(seed int64, vmID, t int) float64 {
	h := hfMix(uint64(seed) ^ 0x9e3779b97f4a7c15)
	h = hfMix(h ^ streamHashedFleet)
	h = hfMix(h ^ uint64(uint32(vmID)) ^ uint64(uint32(t))<<32)
	return float64(h>>11) / (1 << 53)
}

// NewHashedFleet builds a hash-keyed fleet over the VMs, every VM starting
// OFF (the paper's t = 0 condition).
func NewHashedFleet(vms []cloud.VM, seed int64) (*HashedFleet, error) {
	if err := cloud.ValidateVMs(vms); err != nil {
		return nil, err
	}
	f := &HashedFleet{
		vms:    append([]cloud.VM(nil), vms...),
		states: make(map[int]markov.State, len(vms)),
		seed:   seed,
	}
	f.AllOff()
	return f, nil
}

// AllOff forces every VM to OFF and restarts the interval clock.
func (f *HashedFleet) AllOff() {
	for _, vm := range f.vms {
		f.states[vm.ID] = markov.Off
	}
	f.t = 0
}

// Step advances every VM one interval. The rng parameter of the DemandSource
// contract is ignored: every draw comes from the (seed, vmID, interval) hash.
func (f *HashedFleet) Step(_ *rand.Rand) {
	t := f.t
	for _, vm := range f.vms {
		u := hfUniform(f.seed, vm.ID, t)
		switch f.states[vm.ID] {
		case markov.On:
			if u < vm.POff {
				f.states[vm.ID] = markov.Off
			}
		default:
			if u < vm.POn {
				f.states[vm.ID] = markov.On
			}
		}
	}
	f.t++
}

// States returns the live state map (VM id → state). Callers must not
// mutate it; it is shared for efficiency in the simulation hot loop.
func (f *HashedFleet) States() map[int]markov.State { return f.states }

// Add registers a new VM mid-run, starting in the given state. Its future
// draws depend only on its id and the interval clock, so the insertion does
// not disturb any other VM's trajectory.
func (f *HashedFleet) Add(vm cloud.VM, start markov.State) error {
	if err := vm.Validate(); err != nil {
		return err
	}
	if _, exists := f.states[vm.ID]; exists {
		return fmt.Errorf("workload: VM %d already tracked", vm.ID)
	}
	f.vms = append(f.vms, vm)
	f.states[vm.ID] = start
	return nil
}

// Remove forgets a VM (a departure). It returns an error for unknown ids.
func (f *HashedFleet) Remove(vmID int) error {
	if _, exists := f.states[vmID]; !exists {
		return fmt.Errorf("workload: VM %d not tracked", vmID)
	}
	delete(f.states, vmID)
	for i, vm := range f.vms {
		if vm.ID == vmID {
			f.vms = append(f.vms[:i], f.vms[i+1:]...)
			break
		}
	}
	return nil
}

// Size returns the number of tracked VMs.
func (f *HashedFleet) Size() int { return len(f.vms) }
