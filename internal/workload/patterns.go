// Package workload generates the paper's evaluation workloads: random VM
// fleets for the three spike patterns of §V (R_b = R_e, R_b > R_e,
// R_b < R_e), the Table I web-server size classes, ON-OFF demand traces
// (Figs. 1 and 8), and the user-request generator with exponential think
// times used in the live-migration experiments (§V-D).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/cloud"
)

// Pattern is one of the paper's three workload patterns, distinguished by
// the relation between the normal demand R_b and the spike size R_e.
type Pattern int

const (
	// PatternEqual is R_b = R_e — "normal spike size" (Fig. 5a).
	PatternEqual Pattern = iota
	// PatternSmallSpike is R_b > R_e — "small spike size" (Fig. 5b).
	PatternSmallSpike
	// PatternLargeSpike is R_b < R_e — "large spike size" (Fig. 5c).
	PatternLargeSpike
)

// String names the pattern the way the paper's figures do.
func (p Pattern) String() string {
	switch p {
	case PatternEqual:
		return "Rb=Re"
	case PatternSmallSpike:
		return "Rb>Re"
	case PatternLargeSpike:
		return "Rb<Re"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Patterns lists all three patterns in the paper's presentation order.
func Patterns() []Pattern {
	return []Pattern{PatternEqual, PatternSmallSpike, PatternLargeSpike}
}

// FleetParams configures random fleet generation. The zero ranges are filled
// by DefaultFleetParams with the exact settings in the caption of Fig. 5:
// p_on = 0.01, p_off = 0.09, C ∈ [80,100], and per-pattern R ranges.
type FleetParams struct {
	N       int     // number of VMs
	Pattern Pattern // spike pattern
	POn     float64 // OFF→ON probability, uniform across the fleet
	POff    float64 // ON→OFF probability, uniform across the fleet
	RbMin   float64 // R_b sampled uniformly from [RbMin, RbMax]
	RbMax   float64
	ReMin   float64 // R_e sampled uniformly from [ReMin, ReMax]
	ReMax   float64
}

// DefaultFleetParams returns the Fig. 5 experiment settings for a pattern:
//
//	R_b = R_e:  R_b, R_e ∈ [2, 20]
//	R_b > R_e:  R_b ∈ [12, 20], R_e ∈ [2, 10]
//	R_b < R_e:  R_b ∈ [2, 10],  R_e ∈ [12, 20]
func DefaultFleetParams(pattern Pattern, n int) FleetParams {
	p := FleetParams{N: n, Pattern: pattern, POn: 0.01, POff: 0.09}
	switch pattern {
	case PatternSmallSpike:
		p.RbMin, p.RbMax, p.ReMin, p.ReMax = 12, 20, 2, 10
	case PatternLargeSpike:
		p.RbMin, p.RbMax, p.ReMin, p.ReMax = 2, 10, 12, 20
	default: // PatternEqual
		p.RbMin, p.RbMax, p.ReMin, p.ReMax = 2, 20, 2, 20
	}
	return p
}

// Validate checks the parameter ranges.
func (p FleetParams) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("workload: fleet size %d, want ≥ 1", p.N)
	}
	if !(p.POn > 0 && p.POn <= 1) || !(p.POff > 0 && p.POff <= 1) {
		return fmt.Errorf("workload: switch probabilities (%v, %v) outside (0,1]", p.POn, p.POff)
	}
	if p.RbMin < 0 || p.RbMax < p.RbMin {
		return fmt.Errorf("workload: bad R_b range [%v, %v]", p.RbMin, p.RbMax)
	}
	if p.ReMin < 0 || p.ReMax < p.ReMin {
		return fmt.Errorf("workload: bad R_e range [%v, %v]", p.ReMin, p.ReMax)
	}
	if p.RbMax == 0 && p.ReMax == 0 {
		return fmt.Errorf("workload: fleet would have zero peak demand")
	}
	return nil
}

// GenerateVMs samples a fleet of N VMs with ids 0..N−1. For PatternEqual the
// paper's "R_b = R_e" is interpreted per its Fig. 5(a) caption — both drawn
// from the same range — rather than literally equal values.
func GenerateVMs(p FleetParams, rng *rand.Rand) ([]cloud.VM, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	vms := make([]cloud.VM, p.N)
	for i := range vms {
		vms[i] = cloud.VM{
			ID:   i,
			POn:  p.POn,
			POff: p.POff,
			Rb:   uniform(rng, p.RbMin, p.RbMax),
			Re:   uniform(rng, p.ReMin, p.ReMax),
		}
	}
	return vms, nil
}

// GeneratePMs samples n PMs with ids 0..n−1 and capacities uniform in
// [capMin, capMax] — the paper's C_j ∈ [80, 100].
func GeneratePMs(n int, capMin, capMax float64, rng *rand.Rand) ([]cloud.PM, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: pool size %d, want ≥ 1", n)
	}
	if capMin <= 0 || capMax < capMin {
		return nil, fmt.Errorf("workload: bad capacity range [%v, %v]", capMin, capMax)
	}
	pms := make([]cloud.PM, n)
	for i := range pms {
		pms[i] = cloud.PM{ID: i, Capacity: uniform(rng, capMin, capMax)}
	}
	return pms, nil
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi == lo {
		return lo
	}
	return lo + (hi-lo)*rng.Float64()
}

// SizeClass is a Table I workload size: the number of users a VM
// specification accommodates.
type SizeClass int

const (
	// ClassSmall accommodates 400 users.
	ClassSmall SizeClass = iota
	// ClassMedium accommodates 800 users.
	ClassMedium
	// ClassLarge accommodates 1600 users.
	ClassLarge
)

// Users returns the user population of the class (§V-D: 400 for small, 800
// for medium, 1600 for large).
func (c SizeClass) Users() int {
	switch c {
	case ClassSmall:
		return 400
	case ClassMedium:
		return 800
	case ClassLarge:
		return 1600
	default:
		return 0
	}
}

// String names the class as in Table I.
func (c SizeClass) String() string {
	switch c {
	case ClassSmall:
		return "small"
	case ClassMedium:
		return "medium"
	case ClassLarge:
		return "large"
	default:
		return fmt.Sprintf("SizeClass(%d)", int(c))
	}
}

// TableIEntry is one row of Table I: a workload pattern realised by R_b and
// R_e size classes, with the user populations the VM accommodates at normal
// and peak capability.
type TableIEntry struct {
	Pattern Pattern
	RbClass SizeClass
	ReClass SizeClass
}

// NormalUsers returns the users accommodated at normal capability (the R_b
// class population).
func (e TableIEntry) NormalUsers() int { return e.RbClass.Users() }

// PeakUsers returns the users accommodated at peak capability
// (R_b + R_e class populations — e.g. small+medium = 400+800 = 1200,
// matching Table I).
func (e TableIEntry) PeakUsers() int { return e.RbClass.Users() + e.ReClass.Users() }

// TableI returns the seven experiment settings of Table I in paper order.
func TableI() []TableIEntry {
	return []TableIEntry{
		{PatternEqual, ClassSmall, ClassSmall},
		{PatternEqual, ClassMedium, ClassMedium},
		{PatternEqual, ClassLarge, ClassLarge},
		{PatternSmallSpike, ClassMedium, ClassSmall},
		{PatternSmallSpike, ClassLarge, ClassMedium},
		{PatternLargeSpike, ClassSmall, ClassMedium},
		{PatternLargeSpike, ClassMedium, ClassLarge},
	}
}

// TableIForPattern returns the Table I rows matching one pattern.
func TableIForPattern(p Pattern) []TableIEntry {
	var out []TableIEntry
	for _, e := range TableI() {
		if e.Pattern == p {
			out = append(out, e)
		}
	}
	return out
}

// VMFromEntry builds a VM spec from a Table I row, expressing demand in
// "users served" units: R_b is the normal population and R_e the extra
// population a spike brings, with the paper's switch probabilities.
func VMFromEntry(id int, e TableIEntry, pOn, pOff float64) cloud.VM {
	return cloud.VM{
		ID:   id,
		POn:  pOn,
		POff: pOff,
		Rb:   float64(e.RbClass.Users()),
		Re:   float64(e.ReClass.Users()),
	}
}
