package shardsvc

import (
	"strconv"

	"repro/internal/admission"
	"repro/internal/telemetry"
)

// fedMetrics is the federation's shardsvc_* families. With a nil registry the
// counters still exist (standalone atomics — FedStats reads them) but the
// gauges are skipped, matching the placesvc "nil Registry = one branch"
// contract.
type fedMetrics struct {
	reg *telemetry.Registry

	routed     []*telemetry.Counter // arrivals routed, per shard
	forwards   *telemetry.Counter   // overflow forwards to a sibling shard
	rejections *telemetry.Counter   // VMs no shard could admit
	sheds      [len(admission.Classes)]*telemetry.Counter

	rebRounds *telemetry.Counter // rounds that observed skew
	rebMoves  *telemetry.Counter // VMs migrated between shards
	rebFailed *telemetry.Counter // moves the recipient refused
	rebErrors *telemetry.Counter // rounds that aborted with an error

	headroomG []*telemetry.Gauge // per-shard snapshot headroom
	queueG    []*telemetry.Gauge // per-shard submission-queue depth
}

func newFedMetrics(reg *telemetry.Registry, n int) *fedMetrics {
	m := &fedMetrics{reg: reg, routed: make([]*telemetry.Counter, n)}
	if reg == nil {
		for i := range m.routed {
			m.routed[i] = new(telemetry.Counter)
		}
		m.forwards = new(telemetry.Counter)
		m.rejections = new(telemetry.Counter)
		for c := range m.sheds {
			m.sheds[c] = new(telemetry.Counter)
		}
		m.rebRounds = new(telemetry.Counter)
		m.rebMoves = new(telemetry.Counter)
		m.rebFailed = new(telemetry.Counter)
		m.rebErrors = new(telemetry.Counter)
		return m
	}
	reg.Help("shardsvc_routed_total", "Arrivals the power-of-d router sent to each shard.")
	reg.Help("shardsvc_forwards_total", "Arrivals forwarded to a sibling shard after the routed shard ran out of capacity.")
	reg.Help("shardsvc_rejections_total", "VMs no shard could admit (fleet-wide ErrNoCapacity).")
	reg.Help("shardsvc_sheds_total", "Arrivals shed by the global admission policy, by class.")
	reg.Help("shardsvc_rebalance_rounds_total", "Rebalance rounds that observed occupancy skew past the band.")
	reg.Help("shardsvc_rebalance_moves_total", "VMs migrated between shards by the rebalancer.")
	reg.Help("shardsvc_rebalance_failed_total", "Rebalance moves refused by the recipient shard.")
	reg.Help("shardsvc_rebalance_errors_total", "Rebalance rounds that aborted with an error (including any VM-evicting rollback failure); the background ticker cannot return errors, so failed rounds surface here.")
	reg.Help("shardsvc_headroom", "Free Eq. (17) slots per shard, sampled at routing time.")
	reg.Help("shardsvc_queue_depth", "Submission-queue depth per shard, sampled at routing time.")
	m.headroomG = make([]*telemetry.Gauge, n)
	m.queueG = make([]*telemetry.Gauge, n)
	for i := 0; i < n; i++ {
		shard := strconv.Itoa(i)
		m.routed[i] = reg.Counter(telemetry.WithLabels("shardsvc_routed_total", "shard", shard))
		m.headroomG[i] = reg.Gauge(telemetry.WithLabels("shardsvc_headroom", "shard", shard))
		m.queueG[i] = reg.Gauge(telemetry.WithLabels("shardsvc_queue_depth", "shard", shard))
	}
	m.forwards = reg.Counter("shardsvc_forwards_total")
	m.rejections = reg.Counter("shardsvc_rejections_total")
	for c := range m.sheds {
		m.sheds[c] = reg.Counter(telemetry.WithLabels("shardsvc_sheds_total",
			"class", admission.Class(c).String()))
	}
	m.rebRounds = reg.Counter("shardsvc_rebalance_rounds_total")
	m.rebMoves = reg.Counter("shardsvc_rebalance_moves_total")
	m.rebFailed = reg.Counter("shardsvc_rebalance_failed_total")
	m.rebErrors = reg.Counter("shardsvc_rebalance_errors_total")
	return m
}

func (m *fedMetrics) noteShed(class admission.Class, cost int) {
	m.sheds[class].Add(uint64(cost))
}

// FedStats is a point-in-time view of the federation's own counters —
// routing, forwarding and rebalancing activity the per-shard placesvc.Stats
// cannot see.
type FedStats struct {
	Routed          []uint64 // arrivals routed, per shard
	Forwards        uint64   // overflow forwards
	Rejections      uint64   // fleet-wide capacity rejections
	Sheds           uint64   // global-policy sheds, all classes
	RebalanceRounds uint64
	RebalanceMoves  uint64
	RebalanceFailed uint64
	RebalanceErrors uint64
}

// FedStats returns the federation counters.
func (f *Federation) FedStats() FedStats {
	m := f.metrics
	st := FedStats{
		Routed:          make([]uint64, len(m.routed)),
		Forwards:        m.forwards.Value(),
		Rejections:      m.rejections.Value(),
		RebalanceRounds: m.rebRounds.Value(),
		RebalanceMoves:  m.rebMoves.Value(),
		RebalanceFailed: m.rebFailed.Value(),
		RebalanceErrors: m.rebErrors.Value(),
	}
	for i, c := range m.routed {
		st.Routed[i] = c.Value()
	}
	for _, c := range m.sheds {
		st.Sheds += c.Value()
	}
	return st
}
