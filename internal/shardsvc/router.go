package shardsvc

import "sync/atomic"

// router picks a shard per arrival by power-of-d choices: draw d candidate
// shards (with replacement) from a counter-keyed hash, read each candidate's
// lock-free snapshot headroom, and join the one with the most free slots —
// ties to the lowest index. Mitzenmacher's classic result is that d = 2
// already collapses the maximum load imbalance exponentially versus random
// placement, at two snapshot reads per arrival instead of a full scan; d ≥
// shard count degenerates to exact least-loaded.
//
// Candidates come from splitmix64 finalisations of (seed, draw counter) —
// never the global RNG or the clock — so a sequential submission stream is
// routed identically on every run with the same seed, shard count and d:
// the routing-replay determinism contract.
type router struct {
	n    int
	d    int
	seed uint64
	seq  atomic.Uint64
}

func newRouter(n, d int, seed uint64) *router {
	if d > n {
		d = n
	}
	return &router{n: n, d: d, seed: seed}
}

// splitmix64 is the SplitMix64 finaliser — the same avalanche mix the faults
// and workload packages use for their seeded per-entity streams.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pick returns the shard for the next arrival. headroom reads a shard's
// current free-slot count (a lock-free snapshot load).
func (r *router) pick(headroom func(int) int) int {
	if r.n == 1 {
		return 0
	}
	if r.d >= r.n {
		// Least-loaded: scan every shard, ties to the lowest index.
		best, bestHead := 0, headroom(0)
		for i := 1; i < r.n; i++ {
			if h := headroom(i); h > bestHead {
				best, bestHead = i, h
			}
		}
		return best
	}
	seq := r.seq.Add(1)
	base := splitmix64(r.seed + seq)
	best, bestHead := -1, -1
	for j := 0; j < r.d; j++ {
		cand := int(splitmix64(base+uint64(j)) % uint64(r.n))
		h := headroom(cand)
		if h > bestHead || (h == bestHead && cand < best) {
			best, bestHead = cand, h
		}
	}
	return best
}
