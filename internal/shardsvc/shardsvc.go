// Package shardsvc federates the placesvc admission plane: it partitions the
// PM pool into MaxShards independent placesvc.Service shards — each with its
// own committer goroutine, submission queue, op-ring snapshot pipeline and
// fit index — and fronts them with a power-of-d-choices router reading the
// shards' lock-free snapshots. One committer's throughput ceiling (one
// Algorithm-2 ordering pass per commit) becomes MaxShards ceilings; the price
// is that first-fit runs per shard, so placements differ from the single
// fleet-wide service once MaxShards > 1.
//
// Determinism contracts, extending the placesvc family (MaxBatch = 1 ≡
// sequential Online; Workers = N bit-identical):
//
//   - MaxShards = 1 is bit-identical to a single placesvc.Service with the
//     same config: one shard owns the whole pool in given order, the router
//     degenerates to the constant shard 0, forwarding never engages, and
//     per-shard admission compiles the same pipeline the service would.
//   - Routing replays: with a fixed Seed, shard count and D, a sequential
//     submission stream is routed to the identical shard sequence on every
//     run — the router draws from a counter-keyed splitmix64 hash, never
//     from global RNG or the clock.
//
// The background rebalancer (see rebalance.go) migrates VMs from the most- to
// the least-occupied shard when headroom skews past a hysteresis band,
// reusing the simulator's migration trace accounting.
package shardsvc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/placesvc"
	"repro/internal/telemetry"
)

// Config assembles a Federation. Strategy/PMs/POn/POff/MaxBatch/Workers/
// MaxWait/QueueCap pass through to every shard's placesvc.Config; the
// remaining fields shape the federation itself.
type Config struct {
	// Strategy is the per-shard admission policy (Eq. 17 mapping table).
	Strategy core.QueuingFFD
	// PMs is the full pool. Shard i owns a contiguous range of this slice in
	// given order, cut by core.ShardBounds — the same house partitioning rule
	// the simulator's sharded stepping uses. The slice is never reordered:
	// position order defines first-fit order inside each shard, which is what
	// makes the MaxShards = 1 federation bit-identical to a single service.
	PMs []cloud.PM
	// POn, POff seed each shard's initial mapping table.
	POn, POff float64
	// MaxShards is the number of independent shards (default 1; clamped to
	// len(PMs) so no shard is empty).
	MaxShards int
	// D is the router's choice count: each arrival samples D shards (with
	// replacement) from the counter-keyed hash and joins the one with the
	// most snapshot headroom. Default 2 — the classic power-of-two-choices
	// sweet spot; D ≥ MaxShards degenerates to least-loaded over all shards.
	D int
	// Seed keys the router's hash. Runs with equal Seed, MaxShards and D
	// route a sequential stream identically.
	Seed uint64
	// MaxBatch, Workers, MaxWait, QueueCap configure each shard's committer
	// exactly as in placesvc.Config (defaults likewise).
	MaxBatch int
	Workers  int
	MaxWait  time.Duration
	QueueCap int
	// Registry receives the federation's shardsvc_* metrics (per-shard
	// routing counters and headroom/queue-depth gauges, forward and
	// rebalance counters). Shards run with a nil registry — their gauges
	// would collide on one family — so fleet counters come from Stats().
	Registry *telemetry.Registry
	// Obs is shared by every shard (the plane's recorder and windows are
	// mutex-protected): rejection/shed storms and latency windows aggregate
	// fleet-wide. The rebalancer's skew detections feed its storm:skew
	// flight trigger.
	Obs *obs.Plane
	// Admission places the admission layer by its Scope: "shard" (default)
	// hands the config to every shard, compiling one independent pipeline
	// per shard; "global" compiles a single pipeline at the federation
	// front door, thresholding on fleet-wide occupancy, and the shards run
	// without one.
	Admission *admission.Config
	// Tracer receives one telemetry.MigrationTraceEvent per rebalance move
	// (Planned = true, Interval = rebalance round). Nil disables tracing.
	Tracer telemetry.Tracer
	// Rebalance shapes the background rebalancer; the zero value disables
	// the ticker (RebalanceOnce still works on demand).
	Rebalance RebalanceConfig
}

// Federation is the sharded admission front-end. All mutation methods are
// safe for concurrent use; snapshot reads never block any committer.
type Federation struct {
	shards []*placesvc.Service
	bounds []int // ShardBounds over Config.PMs: shard i owns PMs[bounds[i]:bounds[i+1]]
	router *router

	// Owner index: which shard hosts each VM. The router decides where an
	// arrival lands, so departures need the map back. Guarded by mu.
	mu    sync.Mutex
	owner map[int]int

	// Global admission (Scope "global" only); nil otherwise. admMu
	// serialises Decide, matching the placesvc contract.
	admMu  sync.Mutex
	policy *admission.Pipeline
	admCfg *admission.Config

	obs     *obs.Plane
	tracer  telemetry.Tracer
	metrics *fedMetrics

	reb       RebalanceConfig
	rebMu     sync.Mutex  // serialises RebalanceOnce rounds
	rebRound  int         // rounds that observed skew (trace Interval)
	lastMoved map[int]int // vmID → round it last moved (oscillation guard)

	closeOnce sync.Once
	closeErr  error
	stop      chan struct{}
	wg        sync.WaitGroup
}

func (c Config) withDefaults() (Config, error) {
	if len(c.PMs) == 0 {
		return c, fmt.Errorf("shardsvc: empty PM pool")
	}
	if c.MaxShards == 0 {
		c.MaxShards = 1
	}
	if c.MaxShards < 1 {
		return c, fmt.Errorf("shardsvc: MaxShards must be ≥ 1, got %d", c.MaxShards)
	}
	if c.MaxShards > len(c.PMs) {
		c.MaxShards = len(c.PMs)
	}
	if c.D == 0 {
		c.D = 2
	}
	if c.D < 1 {
		return c, fmt.Errorf("shardsvc: D must be ≥ 1, got %d", c.D)
	}
	if err := c.Rebalance.validate(); err != nil {
		return c, err
	}
	return c, nil
}

// New partitions the pool, builds one placesvc.Service per shard, and wires
// the router. Close releases every shard (and the rebalance ticker).
func New(cfg Config) (*Federation, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	scope := admission.ScopeShard
	if cfg.Admission != nil {
		if err := cfg.Admission.Validate(); err != nil {
			return nil, err
		}
		scope = cfg.Admission.EffectiveScope()
	}

	bounds := core.ShardBounds(len(cfg.PMs), cfg.MaxShards)
	n := len(bounds) - 1
	f := &Federation{
		shards:    make([]*placesvc.Service, n),
		bounds:    bounds,
		router:    newRouter(n, cfg.D, cfg.Seed),
		owner:     make(map[int]int),
		obs:       cfg.Obs,
		tracer:    cfg.Tracer,
		metrics:   newFedMetrics(cfg.Registry, n),
		reb:       cfg.Rebalance.withDefaults(),
		lastMoved: make(map[int]int),
		stop:      make(chan struct{}),
	}
	var shardAdm *admission.Config
	if cfg.Admission != nil {
		if scope == admission.ScopeGlobal {
			if f.policy, err = cfg.Admission.Compile(); err != nil {
				return nil, err
			}
			f.admCfg = cfg.Admission
		} else {
			shardAdm = cfg.Admission
		}
	}
	for i := 0; i < n; i++ {
		svc, err := placesvc.New(placesvc.Config{
			Strategy:  cfg.Strategy,
			PMs:       cfg.PMs[bounds[i]:bounds[i+1]],
			POn:       cfg.POn,
			POff:      cfg.POff,
			MaxBatch:  cfg.MaxBatch,
			Workers:   cfg.Workers,
			MaxWait:   cfg.MaxWait,
			QueueCap:  cfg.QueueCap,
			Obs:       cfg.Obs,
			Admission: shardAdm,
		})
		if err != nil {
			for j := 0; j < i; j++ {
				f.shards[j].Close()
			}
			return nil, fmt.Errorf("shardsvc: building shard %d: %w", i, err)
		}
		f.shards[i] = svc
	}
	if f.reb.Interval > 0 {
		f.wg.Add(1)
		go f.rebalanceLoop()
	}
	return f, nil
}

// NumShards returns the shard count.
func (f *Federation) NumShards() int { return len(f.shards) }

// Shard returns shard i's service — for monitoring and tests; callers must
// not Close it.
func (f *Federation) Shard(i int) *placesvc.Service { return f.shards[i] }

// ShardSnapshots returns every shard's latest snapshot, index-aligned with
// Shard. The set is not atomic across shards — each is the newest published
// by its own committer.
func (f *Federation) ShardSnapshots() []*placesvc.Snapshot {
	out := make([]*placesvc.Snapshot, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.Snapshot()
	}
	return out
}

// Arrive routes one VM to a power-of-D-chosen shard and places it there,
// forwarding to the remaining shards (most headroom first) if the chosen
// shard is out of capacity. Equivalent to ArriveClass with a background
// context and ClassStandard.
func (f *Federation) Arrive(vm cloud.VM) (int, error) {
	return f.ArriveClass(context.Background(), vm, admission.ClassStandard)
}

// ArriveCtx is Arrive honoring ctx while queued, with the placesvc
// cancellation contract per shard.
func (f *Federation) ArriveCtx(ctx context.Context, vm cloud.VM) (int, error) {
	return f.ArriveClass(ctx, vm, admission.ClassStandard)
}

// ArriveClass is ArriveCtx with an explicit priority class. Under a global
// admission config the policy decides here, on fleet-wide occupancy, before
// any shard sees the request; under per-shard scope the routed shard's own
// pipeline decides.
func (f *Federation) ArriveClass(ctx context.Context, vm cloud.VM, class admission.Class) (int, error) {
	if f.policy != nil {
		if err := f.admit(1, class); err != nil {
			return 0, err
		}
		var cancel context.CancelFunc
		if ctx, cancel = f.deadlineCtx(ctx, class); cancel != nil {
			defer cancel()
		}
	}
	shard := f.router.pick(f.headroom)
	f.noteRouted(shard)
	pmID, err := f.shards[shard].ArriveClass(ctx, vm, class)
	if err == nil {
		f.setOwner(vm.ID, shard)
		return pmID, err
	}
	if !errors.Is(err, cloud.ErrNoCapacity) || len(f.shards) == 1 {
		return pmID, err
	}
	// The chosen shard is full; forward to the others, most headroom first.
	for _, next := range f.byHeadroom(shard) {
		f.metrics.forwards.Inc()
		pmID, ferr := f.shards[next].ArriveClass(ctx, vm, class)
		if ferr == nil {
			f.setOwner(vm.ID, next)
			return pmID, nil
		}
		err = ferr
		if !errors.Is(err, cloud.ErrNoCapacity) {
			return pmID, err
		}
	}
	f.metrics.rejections.Inc()
	return 0, err
}

// ArriveBatch routes a whole batch to the power-of-D shard, then forwards the
// VMs it could not place to the remaining shards (most headroom first) as
// sub-batches. VMs no shard can admit come back in unplaced; any other
// failure aborts forwarding, and unplaced then holds the full still-unplaced
// remainder — every VM of vms that landed on no shard, audited against the
// failing shard's snapshot (a mid-apply abort under-reports its own
// unplaced) with the owner index reconciled along the way — so a caller may
// retry exactly the returned VMs without double-placing the rest.
func (f *Federation) ArriveBatch(vms []cloud.VM) (unplaced []cloud.VM, err error) {
	return f.ArriveBatchClass(context.Background(), vms, admission.ClassStandard)
}

// ArriveBatchCtx is ArriveBatch honoring ctx while queued. A global admission
// policy charges the whole batch at once (cost = len(vms)), the same contract
// as placesvc.ArriveBatchCtx.
func (f *Federation) ArriveBatchCtx(ctx context.Context, vms []cloud.VM) (unplaced []cloud.VM, err error) {
	return f.ArriveBatchClass(ctx, vms, admission.ClassStandard)
}

// ArriveBatchClass is ArriveBatchCtx with an explicit priority class.
func (f *Federation) ArriveBatchClass(ctx context.Context, vms []cloud.VM, class admission.Class) (unplaced []cloud.VM, err error) {
	if err := cloud.ValidateVMs(vms); err != nil {
		return nil, err
	}
	if len(vms) == 0 {
		return nil, nil
	}
	if f.policy != nil {
		if err := f.admit(len(vms), class); err != nil {
			return nil, err
		}
		var cancel context.CancelFunc
		if ctx, cancel = f.deadlineCtx(ctx, class); cancel != nil {
			defer cancel()
		}
	}
	shard := f.router.pick(f.headroom)
	f.noteRouted(shard)
	unplaced, err = f.shards[shard].ArriveBatchClass(ctx, vms, class)
	if err != nil {
		return f.unplacedAfterAbort(vms, shard), err
	}
	f.ownBatch(vms, unplaced, shard)
	if len(unplaced) == 0 || len(f.shards) == 1 {
		return unplaced, nil
	}
	for _, next := range f.byHeadroom(shard) {
		f.metrics.forwards.Inc()
		sub := unplaced
		rest, ferr := f.shards[next].ArriveBatchClass(ctx, sub, class)
		if ferr != nil {
			// sub is already the remainder after every earlier shard, so the
			// audited subset of it that missed `next` too is the batch-wide
			// still-unplaced set.
			return f.unplacedAfterAbort(sub, next), ferr
		}
		f.ownBatch(sub, rest, next)
		unplaced = rest
		if len(unplaced) == 0 {
			return nil, nil
		}
	}
	f.metrics.rejections.Add(uint64(len(unplaced)))
	return unplaced, nil
}

// Depart removes a VM from the shard hosting it. Unknown ids are forwarded
// to shard 0, whose "not placed" error matches the single-service one.
func (f *Federation) Depart(vmID int) error {
	return f.DepartCtx(context.Background(), vmID)
}

// DepartCtx is Depart honoring ctx while queued. Departures never run
// through admission, matching placesvc.
func (f *Federation) DepartCtx(ctx context.Context, vmID int) error {
	shard := f.ownerOf(vmID)
	err := f.shards[shard].DepartCtx(ctx, vmID)
	if err == nil {
		f.clearOwner(vmID)
	}
	return err
}

// DepartBatch groups the ids by owning shard — each group keeps the input
// order, unknown ids joining shard 0's group — and issues one sub-batch per
// shard in shard order. missing concatenates the per-shard results in shard
// order; with one shard the call passes through verbatim.
func (f *Federation) DepartBatch(vmIDs []int) (missing []int, err error) {
	if len(vmIDs) == 0 {
		return nil, nil
	}
	groups := make([][]int, len(f.shards))
	f.mu.Lock()
	for _, id := range vmIDs {
		s := f.owner[id] // unknown → 0
		groups[s] = append(groups[s], id)
	}
	f.mu.Unlock()
	for s, ids := range groups {
		if len(ids) == 0 {
			continue
		}
		m, derr := f.shards[s].DepartBatch(ids)
		if derr != nil {
			return missing, derr
		}
		missing = append(missing, m...)
		gone := make(map[int]bool, len(m))
		for _, id := range m {
			gone[id] = true
		}
		f.mu.Lock()
		for _, id := range ids {
			if !gone[id] {
				delete(f.owner, id)
			}
		}
		f.mu.Unlock()
	}
	return missing, nil
}

// RefreshTable recomputes every shard's mapping table (shard order; first
// error wins). Shards share the strategy's table cache, so cohorts common
// across shards solve once.
func (f *Federation) RefreshTable() error {
	for i, s := range f.shards {
		if err := s.RefreshTable(); err != nil {
			return fmt.Errorf("shardsvc: refreshing shard %d: %w", i, err)
		}
	}
	return nil
}

// Stats sums every shard's counter block into one placesvc.Stats. Version is
// the sum of per-shard commit counts — monotone, but not a global commit
// sequence.
func (f *Federation) Stats() placesvc.Stats {
	var total placesvc.Stats
	for _, s := range f.shards {
		st := s.Stats()
		total.Version += st.Version
		total.VMs += st.VMs
		total.UsedPMs += st.UsedPMs
		total.Placed += st.Placed
		total.Rejected += st.Rejected
		total.Departed += st.Departed
		total.Requests += st.Requests
		total.Commits += st.Commits
		total.Refreshes += st.Refreshes
	}
	return total
}

// Headroom sums the shards' free Eq. (17) slots.
func (f *Federation) Headroom() int {
	total := 0
	for _, s := range f.shards {
		total += s.Snapshot().Headroom()
	}
	return total
}

// QueueDepth sums the shards' submission-queue depths.
func (f *Federation) QueueDepth() int {
	total := 0
	for _, s := range f.shards {
		total += s.QueueDepth()
	}
	return total
}

// Close stops the rebalancer and every shard. Safe to call twice.
func (f *Federation) Close() error {
	f.closeOnce.Do(func() {
		close(f.stop)
		f.wg.Wait()
		for _, s := range f.shards {
			if err := s.Close(); err != nil && f.closeErr == nil {
				f.closeErr = err
			}
		}
	})
	return f.closeErr
}

// admit runs one global-policy decision on fleet-wide occupancy, mirroring
// the placesvc admit contract (serialised Decide, shed metrics, obs storm
// feed).
func (f *Federation) admit(cost int, class admission.Class) error {
	slots, vms := 0, 0
	for _, s := range f.shards {
		snap := s.Snapshot()
		slots += snap.Slots()
		vms += snap.Stats().VMs
	}
	occ := float64(vms) / float64(slots) // slots ≥ MaxShards ≥ 1
	f.admMu.Lock()
	d := f.policy.Decide(admission.Request{
		TimeNs:    time.Now().UnixNano(),
		Cost:      cost,
		Class:     class,
		Occupancy: occ,
	})
	f.admMu.Unlock()
	if d.Admit {
		return nil
	}
	f.metrics.noteShed(class, cost)
	if o := f.obs; o != nil {
		o.ObserveSheds(cost)
	}
	return fmt.Errorf("shardsvc: %s arrival shed by %s policy: %w", class, d.Reason, admission.ErrShed)
}

// deadlineCtx applies the global config's default class deadline when ctx
// carries none.
func (f *Federation) deadlineCtx(ctx context.Context, class admission.Class) (context.Context, context.CancelFunc) {
	if f.admCfg == nil {
		return ctx, nil
	}
	d := f.admCfg.Deadline(class)
	if d <= 0 {
		return ctx, nil
	}
	if _, has := ctx.Deadline(); has {
		return ctx, nil
	}
	return context.WithTimeout(ctx, d)
}

// headroom reads shard i's current snapshot headroom — the router's load
// signal.
func (f *Federation) headroom(i int) int { return f.shards[i].Snapshot().Headroom() }

// byHeadroom returns every shard except skip, ordered by descending snapshot
// headroom with ties broken by ascending index — the forwarding order.
func (f *Federation) byHeadroom(skip int) []int {
	type sh struct{ idx, head int }
	order := make([]sh, 0, len(f.shards)-1)
	for i := range f.shards {
		if i == skip {
			continue
		}
		order = append(order, sh{i, f.headroom(i)})
	}
	for i := 1; i < len(order); i++ { // insertion sort: n is tiny
		for j := i; j > 0 && (order[j].head > order[j-1].head ||
			(order[j].head == order[j-1].head && order[j].idx < order[j-1].idx)); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]int, len(order))
	for i, s := range order {
		out[i] = s.idx
	}
	return out
}

func (f *Federation) noteRouted(shard int) {
	f.metrics.routed[shard].Inc()
	if f.metrics.reg != nil {
		f.metrics.headroomG[shard].Set(float64(f.headroom(shard)))
		f.metrics.queueG[shard].Set(float64(f.shards[shard].QueueDepth()))
	}
}

func (f *Federation) setOwner(vmID, shard int) {
	f.mu.Lock()
	f.owner[vmID] = shard
	f.mu.Unlock()
}

func (f *Federation) clearOwner(vmID int) {
	f.mu.Lock()
	delete(f.owner, vmID)
	f.mu.Unlock()
}

func (f *Federation) ownerOf(vmID int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.owner[vmID] // unknown → 0
}

// ownBatch records ownership for every VM of vms that is absent from
// unplaced (those placed on shard).
func (f *Federation) ownBatch(vms, unplaced []cloud.VM, shard int) {
	skip := make(map[int]bool, len(unplaced))
	for _, vm := range unplaced {
		skip[vm.ID] = true
	}
	f.mu.Lock()
	for _, vm := range vms {
		if !skip[vm.ID] {
			f.owner[vm.ID] = shard
		}
	}
	f.mu.Unlock()
}

// unplacedAfterAbort audits a sub-batch that aborted mid-apply on shard: the
// shard's snapshot placement (published before the erroring call returned) is
// ground truth for which of vms landed. Owners are recorded for the VMs that
// did; the rest come back as the still-unplaced remainder — placesvc clears a
// batch request's unplaced list on a fatal abort, so the failing call's own
// result cannot be trusted to enumerate them.
func (f *Federation) unplacedAfterAbort(vms []cloud.VM, shard int) []cloud.VM {
	p, err := f.shards[shard].Snapshot().Placement()
	if err != nil {
		// Unauditable snapshot: assume nothing landed (a retry may then
		// double-place, but this needs the op-ring replay itself to fail);
		// departures for these ids fall back to shard 0.
		return vms
	}
	rest := make([]cloud.VM, 0, len(vms))
	f.mu.Lock()
	for _, vm := range vms {
		if _, ok := p.PMOf(vm.ID); ok {
			f.owner[vm.ID] = shard
		} else {
			rest = append(rest, vm)
		}
	}
	f.mu.Unlock()
	return rest
}
