package shardsvc

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/cloud"
	"repro/internal/telemetry"
)

// RebalanceConfig shapes the background rebalancer. Power-of-d routing keeps
// *arrivals* balanced, but departures are routed by ownership, so a shard
// whose tenants are long-lived drifts full while its siblings drain; the
// rebalancer migrates VMs from the most- to the least-occupied shard when the
// occupancy spread breaches a hysteresis band — the same band structure as
// the admission OccupancyGate and the sim's migration trigger, for the same
// reason: a single threshold flaps.
type RebalanceConfig struct {
	// Interval is the background rebalance cadence; 0 (the default) disables
	// the ticker — RebalanceOnce still works on demand, which is what the
	// deterministic tests drive.
	Interval time.Duration
	// SkewAbove arms a rebalance round once the occupancy spread
	// (max − min over shards) reaches it. Default 0.2.
	SkewAbove float64
	// SettleBelow is the spread a round aims to restore. It must sit below
	// SkewAbove; the gap is the hysteresis band that keeps consecutive
	// rounds from ping-ponging VMs. Default SkewAbove/2.
	SettleBelow float64
	// MaxMoves caps migrations per round (default 32): a badly skewed fleet
	// converges over several rounds instead of stalling admissions behind
	// one long migration storm.
	MaxMoves int
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.SkewAbove == 0 {
		c.SkewAbove = 0.2
	}
	if c.SettleBelow == 0 {
		c.SettleBelow = c.SkewAbove / 2
	}
	if c.MaxMoves == 0 {
		c.MaxMoves = 32
	}
	return c
}

func (c RebalanceConfig) validate() error {
	d := c.withDefaults()
	if math.IsNaN(d.SkewAbove) || d.SkewAbove <= 0 || d.SkewAbove > 1 {
		return fmt.Errorf("shardsvc: rebalance SkewAbove = %v outside (0, 1]", d.SkewAbove)
	}
	if math.IsNaN(d.SettleBelow) || d.SettleBelow < 0 || d.SettleBelow >= d.SkewAbove {
		return fmt.Errorf("shardsvc: rebalance band inverted: SettleBelow %v must be in [0, SkewAbove %v)",
			d.SettleBelow, d.SkewAbove)
	}
	if c.MaxMoves < 0 {
		return fmt.Errorf("shardsvc: rebalance MaxMoves = %d, want ≥ 0", c.MaxMoves)
	}
	if c.Interval < 0 {
		return fmt.Errorf("shardsvc: rebalance Interval = %v, want ≥ 0", c.Interval)
	}
	return nil
}

// rebalanceLoop is the background ticker driving RebalanceOnce. Round errors
// have no caller to return to here; RebalanceOnce counts every failed round
// in shardsvc_rebalance_errors_total (FedStats.RebalanceErrors), so ticker
// deployments observe them through metrics rather than silently losing them.
func (f *Federation) rebalanceLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.reb.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_, _ = f.RebalanceOnce()
		case <-f.stop:
			return
		}
	}
}

// RebalanceOnce runs one rebalance round and reports how many VMs moved.
//
// A round reads every shard's snapshot occupancy; when the spread (max −
// min) is below SkewAbove it is a no-op. Otherwise the most-occupied shard
// donates to the least-occupied one: each move shrinks the spread by
// 1/slots_donor + 1/slots_recipient, so the round plans
// ceil((spread − SettleBelow) / perMove) moves — capped by MaxMoves, the
// donor's population and the recipient's headroom. Candidates leave the
// donor in ascending VM-id order, skipping any VM moved in the previous
// round, so two consecutive rounds never bounce the same VM back (the
// anti-oscillation guard the tests pin). Each move departs the donor and
// re-arrives on the recipient through placesvc.ArriveMigrated — the
// admission-bypassing migration path: a move is already-admitted capacity in
// flight, so only the recipient's Eq. (17) capacity test decides placement,
// and internal moves never consume admission tokens, shed, or pollute the
// shed metrics and storm triggers (departures skip admission for the same
// reason). A capacity-refused move rolls back to the donor on the same path,
// so a shard's admission policy can never evict the VM on re-arrival; each
// completed move is traced as a planned MigrationTraceEvent with the round
// as its interval, reusing the simulator's migration accounting so existing
// trace tooling reads federation rebalances unchanged.
//
// A non-nil error (also counted in shardsvc_rebalance_errors_total, so the
// background ticker's discarded returns stay observable) means the round
// aborted; the eviction error additionally means a VM was lost to a
// depart/re-arrive race with concurrent client churn on the donor.
func (f *Federation) RebalanceOnce() (moves int, err error) {
	moves, err = f.rebalanceOnce()
	if err != nil {
		f.metrics.rebErrors.Inc()
	}
	return moves, err
}

func (f *Federation) rebalanceOnce() (moves int, err error) {
	if len(f.shards) == 1 {
		return 0, nil
	}
	f.rebMu.Lock()
	defer f.rebMu.Unlock()

	occ := make([]float64, len(f.shards))
	donor, recip := 0, 0
	for i, s := range f.shards {
		snap := s.Snapshot()
		occ[i] = float64(snap.Stats().VMs) / float64(snap.Slots())
		if occ[i] > occ[donor] {
			donor = i
		}
		if occ[i] < occ[recip] {
			recip = i
		}
	}
	spread := occ[donor] - occ[recip]
	if spread < f.reb.SkewAbove {
		return 0, nil
	}

	f.metrics.rebRounds.Inc()
	f.rebRound++
	round := f.rebRound
	if o := f.obs; o != nil {
		o.ObserveSkew()
	}

	donorSnap := f.shards[donor].Snapshot()
	recipSnap := f.shards[recip].Snapshot()
	perMove := 1/float64(donorSnap.Slots()) + 1/float64(recipSnap.Slots())
	want := int(math.Ceil((spread - f.reb.SettleBelow) / perMove))
	want = min(want, f.reb.MaxMoves)
	want = min(want, donorSnap.Stats().VMs)
	want = min(want, recipSnap.Headroom())
	if want <= 0 {
		return 0, nil
	}

	placement, perr := donorSnap.Placement()
	if perr != nil {
		return 0, fmt.Errorf("shardsvc: rebalance reading donor %d: %w", donor, perr)
	}
	for _, vm := range placement.VMs() { // ascending id: deterministic candidate order
		if moves >= want {
			break
		}
		if f.lastMoved[vm.ID] == round-1 && round > 1 {
			continue // moved last round; let it settle
		}
		fromPM, ok := placement.PMOf(vm.ID)
		if !ok {
			continue
		}
		if err := f.shards[donor].Depart(vm.ID); err != nil {
			// Departed between snapshot and now (concurrent churn); skip.
			continue
		}
		toPM, aerr := f.shards[recip].ArriveMigrated(vm)
		if aerr != nil {
			f.metrics.rebFailed.Inc()
			if _, rerr := f.shards[donor].ArriveMigrated(vm); rerr != nil {
				// The rollback also bypasses admission, so it can only fail
				// if concurrent client arrivals consumed the slot the Depart
				// freed. Then the VM is evicted; surface it — callers treat a
				// rebalance error as lost capacity.
				f.clearOwner(vm.ID)
				return moves, fmt.Errorf("shardsvc: rebalance evicted VM %d (recipient: %v; rollback: %w)",
					vm.ID, aerr, rerr)
			}
			if errors.Is(aerr, cloud.ErrNoCapacity) {
				continue // recipient filled up under us; try the next VM
			}
			return moves, fmt.Errorf("shardsvc: rebalance moving VM %d: %w", vm.ID, aerr)
		}
		f.setOwner(vm.ID, recip)
		f.lastMoved[vm.ID] = round
		moves++
		f.metrics.rebMoves.Inc()
		if tr := f.tracer; tr != nil && tr.Enabled() {
			tr.Emit(telemetry.MigrationTraceEvent{
				Interval: round,
				VMID:     vm.ID,
				FromPM:   fromPM,
				ToPM:     toPM,
				Planned:  true,
			})
		}
	}
	// Forget moves older than the last round so the guard map stays bounded.
	for id, r := range f.lastMoved {
		if r < round-1 {
			delete(f.lastMoved, id)
		}
	}
	return moves, nil
}
