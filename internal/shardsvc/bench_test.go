package shardsvc

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cloud"
)

// shardBenchM mirrors the placesvc scale sweep: 1k PMs by default, the full
// ladder under SCALE_BENCH_FULL=1.
func shardBenchM() []int {
	if os.Getenv("SCALE_BENCH_FULL") != "" {
		return []int{1_000, 10_000}
	}
	return []int{1_000}
}

// benchWindow matches the placesvc admission benchmarks: each client keeps a
// 64-VM live window so the fleet reaches a steady state.
const benchWindow = 64

func benchClientOps(f *Federation, b *testing.B, client, ops int) {
	window := make([]int, 0, benchWindow)
	base := (client + 1) * 1_000_000_000
	for i := 0; i < ops; i++ {
		if len(window) == benchWindow {
			if err := f.Depart(window[0]); err != nil {
				b.Errorf("client %d: depart: %v", client, err)
				return
			}
			copy(window, window[1:])
			window = window[:benchWindow-1]
		}
		id := base + i
		if _, err := f.Arrive(mkVM(id, 5, 3)); err != nil {
			if errors.Is(err, cloud.ErrNoCapacity) {
				continue
			}
			b.Errorf("client %d: arrive: %v", client, err)
			return
		}
		window = append(window, id)
	}
}

// BenchmarkShardAdmit measures concurrent admission throughput through the
// federation across the shard ladder: b.N windowed arrive ops split over the
// client goroutines, against 1, 2, 4 and 8 shards. shards=1 is the
// single-committer baseline (the federation adds only the constant-shard
// router and the owner index on top of BenchmarkServeAdmit); higher shard
// counts trade fleet-wide first-fit for parallel committers, so the
// interesting read is ns/op versus shards=1 at the same client count. On a
// single-core container the extra committer goroutines only add scheduling
// pressure — the speedup needs a multi-core runner, the same caveat as the
// PR 5/7 matrices.
func BenchmarkShardAdmit(b *testing.B) {
	for _, m := range shardBenchM() {
		for _, shards := range []int{1, 2, 4, 8} {
			for _, clients := range []int{1, 4, 16} {
				name := fmt.Sprintf("m=%d/shards=%d/clients=%d", m, shards, clients)
				b.Run(name, func(b *testing.B) {
					f, err := New(Config{
						Strategy:  paperStrategy(),
						PMs:       mkPool(m, 100),
						POn:       0.01,
						POff:      0.09,
						MaxShards: shards,
						Seed:      1,
						Workers:   runtime.GOMAXPROCS(0),
					})
					if err != nil {
						b.Fatal(err)
					}
					defer f.Close()
					b.ReportAllocs()
					b.ResetTimer()
					var wg sync.WaitGroup
					for c := 0; c < clients; c++ {
						ops := b.N / clients
						if c < b.N%clients {
							ops++
						}
						if ops == 0 {
							continue
						}
						wg.Add(1)
						go func(c, ops int) {
							defer wg.Done()
							benchClientOps(f, b, c, ops)
						}(c, ops)
					}
					wg.Wait()
				})
			}
		}
	}
}

// BenchmarkRouterPick isolates the router's per-arrival cost: d hash draws
// plus d lock-free snapshot headroom reads.
func BenchmarkRouterPick(b *testing.B) {
	for _, shards := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			f, err := New(Config{
				Strategy:  paperStrategy(),
				PMs:       mkPool(64, 100),
				POn:       0.01,
				POff:      0.09,
				MaxShards: shards,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			b.ReportAllocs()
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += f.router.pick(f.headroom)
			}
			_ = sink
		})
	}
}
