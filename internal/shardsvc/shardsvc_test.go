package shardsvc

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/admission"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/placesvc"
	"repro/internal/telemetry"
)

func paperStrategy() core.QueuingFFD {
	return core.QueuingFFD{Rho: 0.01, MaxVMsPerPM: 16}
}

func mkVM(id int, rb, re float64) cloud.VM {
	return cloud.VM{ID: id, POn: 0.01, POff: 0.09, Rb: rb, Re: re}
}

func mkPool(n int, capacity float64) []cloud.PM {
	pms := make([]cloud.PM, n)
	for i := range pms {
		pms[i] = cloud.PM{ID: i, Capacity: capacity}
	}
	return pms
}

func newFedT(t *testing.T, cfg Config) *Federation {
	t.Helper()
	if cfg.Strategy.MaxVMsPerPM == 0 {
		cfg.Strategy = paperStrategy()
	}
	if cfg.PMs == nil {
		cfg.PMs = mkPool(50, 100)
	}
	if cfg.POn == 0 {
		cfg.POn, cfg.POff = 0.01, 0.09
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestNewValidation(t *testing.T) {
	base := Config{Strategy: paperStrategy(), PMs: mkPool(4, 100), POn: 0.01, POff: 0.09}
	if _, err := New(Config{Strategy: paperStrategy(), POn: 0.01, POff: 0.09}); err == nil {
		t.Error("empty PM pool accepted")
	}
	bad := base
	bad.MaxShards = -1
	if _, err := New(bad); err == nil {
		t.Error("negative MaxShards accepted")
	}
	bad = base
	bad.D = -2
	if _, err := New(bad); err == nil {
		t.Error("negative D accepted")
	}
	bad = base
	bad.Rebalance = RebalanceConfig{SkewAbove: 0.1, SettleBelow: 0.3}
	if _, err := New(bad); err == nil {
		t.Error("inverted rebalance band accepted")
	}
	bad = base
	bad.Admission = &admission.Config{Scope: "regional"}
	if _, err := New(bad); err == nil {
		t.Error("bad admission scope accepted")
	}

	// MaxShards clamps to the pool size: 16 shards over 4 PMs is 4 shards.
	wide := base
	wide.MaxShards = 16
	f, err := New(wide)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := f.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d with 4 PMs, want clamp to 4", got)
	}
}

// assertSameState compares the federation's shard-0 state against a plain
// service bit for bit: placement, stats and snapshot summaries.
func assertSameState(t *testing.T, f *Federation, svc *placesvc.Service) {
	t.Helper()
	fedSnap := f.Shard(0).Snapshot()
	svcSnap := svc.Snapshot()
	if fs, ss := fedSnap.Stats(), svcSnap.Stats(); fs != ss {
		t.Fatalf("stats diverged:\n federation %+v\n service    %+v", fs, ss)
	}
	if fedSnap.Slots() != svcSnap.Slots() || fedSnap.Headroom() != svcSnap.Headroom() {
		t.Fatalf("snapshot summaries diverged: slots %d/%d headroom %d/%d",
			fedSnap.Slots(), svcSnap.Slots(), fedSnap.Headroom(), svcSnap.Headroom())
	}
	got, err := fedSnap.Placement()
	if err != nil {
		t.Fatal(err)
	}
	want, err := svcSnap.Placement()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVMs() != want.NumVMs() {
		t.Fatalf("placement holds %d VMs, want %d", got.NumVMs(), want.NumVMs())
	}
	for _, vm := range want.VMs() {
		wantPM, _ := want.PMOf(vm.ID)
		gotPM, ok := got.PMOf(vm.ID)
		if !ok || gotPM != wantPM {
			t.Fatalf("VM %d on PM %d (ok=%v), want PM %d", vm.ID, gotPM, ok, wantPM)
		}
	}
}

// The MaxShards = 1 ≡ single-service contract: one shard owns the whole pool
// in given order and the router degenerates to the constant shard 0, so a
// fixed sequential request stream must reproduce a plain placesvc.Service
// bit-identically — same PM per arrival, same error classification, same
// final placement, stats and snapshot summaries. Extends the MaxBatch = 1 ≡
// sequential-Online and Workers = N contracts one layer up.
func TestShardEquivalenceMaxShards1(t *testing.T) {
	// storm shrinks the pool so ErrNoCapacity rejections dominate: the
	// equivalence must hold through the forwarding-free rejection path too.
	// admission adds a non-trivial occupancy policy; its per-shard scope
	// must compile the identical pipeline a plain service gets.
	cases := map[string]struct {
		pms       int
		admission *admission.Config
	}{
		"plain": {pms: 20},
		"storm": {pms: 2},
		"admission": {pms: 20, admission: &admission.Config{
			Occupancy: &admission.OccupancyConfig{ShedAbove: 0.35, ResumeBelow: 0.25},
		}},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			strategy := paperStrategy()
			pms := mkPool(tc.pms, 100)
			fed := newFedT(t, Config{
				Strategy: strategy, PMs: pms, MaxShards: 1,
				MaxBatch: 1, Admission: tc.admission,
			})
			svc, err := placesvc.New(placesvc.Config{
				Strategy: strategy, PMs: pms, POn: 0.01, POff: 0.09,
				MaxBatch: 1, Admission: tc.admission,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()

			rng := rand.New(rand.NewSource(77))
			live := []int{}
			for step := 0; step < 400; step++ {
				switch {
				case rng.Float64() < 0.25 && len(live) > 0:
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					errFed := fed.Depart(id)
					errSvc := svc.Depart(id)
					if (errFed == nil) != (errSvc == nil) {
						t.Fatalf("step %d: depart(%d) federation err %v, service err %v", step, id, errFed, errSvc)
					}
				default:
					vm := mkVM(step, 2+30*rng.Float64(), 2+18*rng.Float64())
					pmFed, errFed := fed.Arrive(vm)
					pmSvc, errSvc := svc.Arrive(vm)
					if (errFed == nil) != (errSvc == nil) {
						t.Fatalf("step %d: arrive(%d) federation err %v, service err %v", step, vm.ID, errFed, errSvc)
					}
					if errFed != nil {
						fedCap := errors.Is(errFed, cloud.ErrNoCapacity)
						svcCap := errors.Is(errSvc, cloud.ErrNoCapacity)
						fedShed := errors.Is(errFed, admission.ErrShed)
						svcShed := errors.Is(errSvc, admission.ErrShed)
						if fedCap != svcCap || fedShed != svcShed {
							t.Fatalf("step %d: rejection class diverged: federation %v, service %v", step, errFed, errSvc)
						}
						continue
					}
					if pmFed != pmSvc {
						t.Fatalf("step %d: VM %d on PM %d via federation, PM %d via service", step, vm.ID, pmFed, pmSvc)
					}
					live = append(live, vm.ID)
				}
			}
			assertSameState(t, fed, svc)
			if fs := fed.FedStats(); fs.Forwards != 0 {
				t.Fatalf("single-shard federation forwarded %d arrivals", fs.Forwards)
			}
		})
	}
}

// Batch operations pass through a single-shard federation verbatim.
func TestShardBatchEquivalenceMaxShards1(t *testing.T) {
	strategy := paperStrategy()
	pms := mkPool(3, 60)
	fed := newFedT(t, Config{Strategy: strategy, PMs: pms, MaxShards: 1, MaxBatch: 1})
	svc, err := placesvc.New(placesvc.Config{
		Strategy: strategy, PMs: pms, POn: 0.01, POff: 0.09, MaxBatch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rng := rand.New(rand.NewSource(5))
	batch := make([]cloud.VM, 24)
	for i := range batch {
		batch[i] = mkVM(i, 2+18*rng.Float64(), 2+18*rng.Float64())
	}
	unFed, err := fed.ArriveBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	unSvc, err := svc.ArriveBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(unFed) != len(unSvc) {
		t.Fatalf("federation left %d unplaced, service %d", len(unFed), len(unSvc))
	}
	for i := range unFed {
		if unFed[i].ID != unSvc[i].ID {
			t.Errorf("unplaced[%d]: id %d vs %d", i, unFed[i].ID, unSvc[i].ID)
		}
	}

	ids := []int{batch[0].ID, batch[5].ID, 9999, batch[2].ID}
	missFed, err := fed.DepartBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	missSvc, err := svc.DepartBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(missFed) != len(missSvc) {
		t.Fatalf("federation missing %v, service %v", missFed, missSvc)
	}
	for i := range missFed {
		if missFed[i] != missSvc[i] {
			t.Fatalf("federation missing %v, service %v", missFed, missSvc)
		}
	}
	assertSameState(t, fed, svc)
}

// Routing replay: two federations with equal seed, shard count and D route a
// fixed sequential stream identically — every VM lands on the same shard and
// the same PM, and the per-shard routing counters match.
func TestRouterDeterminism(t *testing.T) {
	mk := func() *Federation {
		return newFedT(t, Config{PMs: mkPool(40, 100), MaxShards: 4, D: 2, Seed: 42})
	}
	a, b := mk(), mk()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		vm := mkVM(i, 2+20*rng.Float64(), 2+10*rng.Float64())
		pmA, errA := a.Arrive(vm)
		pmB, errB := b.Arrive(vm)
		if (errA == nil) != (errB == nil) || pmA != pmB {
			t.Fatalf("arrival %d diverged: (%d, %v) vs (%d, %v)", i, pmA, errA, pmB, errB)
		}
	}
	sa, sb := a.FedStats(), b.FedStats()
	for i := range sa.Routed {
		if sa.Routed[i] != sb.Routed[i] {
			t.Fatalf("shard %d routed %d vs %d", i, sa.Routed[i], sb.Routed[i])
		}
	}
	for i := 0; i < a.NumShards(); i++ {
		if av, bv := a.Shard(i).Stats().VMs, b.Shard(i).Stats().VMs; av != bv {
			t.Fatalf("shard %d holds %d vs %d VMs", i, av, bv)
		}
	}
}

// The raw router replays too, and a different seed reroutes: the sequence is
// a pure function of (seed, draw counter, headroom reads).
func TestRouterSeedSequence(t *testing.T) {
	head := func(int) int { return 10 } // uniform: choice is hash-driven
	seq := func(seed uint64) []int {
		r := newRouter(8, 2, seed)
		out := make([]int, 200)
		for i := range out {
			out[i] = r.pick(head)
		}
		return out
	}
	a, b := seq(1), seq(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d: %d vs %d with equal seeds", i, a[i], b[i])
		}
	}
	c := seq(2)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seed change did not alter the routing sequence")
	}
}

// Power-of-d picks the roomier candidate: with one shard drained the router
// must send (nearly) everything elsewhere once headroom separates.
func TestRouterPrefersHeadroom(t *testing.T) {
	heads := []int{0, 50}
	r := newRouter(2, 2, 7)
	for i := 0; i < 100; i++ {
		if got := r.pick(func(i int) int { return heads[i] }); got != 1 {
			t.Fatalf("pick %d chose the empty shard", i)
		}
	}
}

// A routed shard out of real capacity forwards to its siblings: the arrival
// still lands, on the shard that can hold it, and the forward is counted.
func TestForwardOnFullShard(t *testing.T) {
	// Shard 0's single PM is too small for any VM, so every arrival routed
	// there must forward to shard 1.
	// Shard 1's single PM also caps at 16 Eq. (17) slots, so stay below it.
	pms := []cloud.PM{{ID: 0, Capacity: 1}, {ID: 1, Capacity: 1000}}
	fed := newFedT(t, Config{PMs: pms, MaxShards: 2, Seed: 3})
	for i := 0; i < 12; i++ {
		if _, err := fed.Arrive(mkVM(i, 20, 5)); err != nil {
			t.Fatalf("arrive %d: %v", i, err)
		}
	}
	if got := fed.Shard(1).Stats().VMs; got != 12 {
		t.Fatalf("shard 1 holds %d VMs, want all 12", got)
	}
	fs := fed.FedStats()
	if fs.Forwards == 0 {
		t.Fatal("no forwards counted despite an uninhabitable shard")
	}
	if fs.Rejections != 0 {
		t.Fatalf("rejections = %d, want 0 (shard 1 had room)", fs.Rejections)
	}
	// Departures route home through the owner index even for forwarded VMs.
	for i := 0; i < 12; i++ {
		if err := fed.Depart(i); err != nil {
			t.Fatalf("depart %d: %v", i, err)
		}
	}
	if got := fed.Stats().VMs; got != 0 {
		t.Fatalf("fleet holds %d VMs after departing all, want 0", got)
	}
}

// When every shard is out of capacity the arrival fails with ErrNoCapacity —
// the same classification a single service gives — and is counted rejected.
func TestAllShardsFullRejects(t *testing.T) {
	fed := newFedT(t, Config{PMs: mkPool(2, 10), MaxShards: 2})
	placed := 0
	for i := 0; i < 50; i++ {
		if _, err := fed.Arrive(mkVM(i, 8, 1)); err == nil {
			placed++
		}
	}
	if placed == 0 || placed == 50 {
		t.Fatalf("placed %d of 50, want the pool to fill partway", placed)
	}
	_, err := fed.Arrive(mkVM(999, 8, 1))
	if !errors.Is(err, cloud.ErrNoCapacity) {
		t.Fatalf("full-fleet arrival error = %v, want ErrNoCapacity", err)
	}
	if fs := fed.FedStats(); fs.Rejections == 0 {
		t.Fatal("no rejections counted on a full fleet")
	}
}

// Global admission scope: one pipeline fronts the federation, deciding on
// fleet-wide occupancy before any shard sees the request.
func TestGlobalAdmissionScope(t *testing.T) {
	fed := newFedT(t, Config{
		PMs: mkPool(4, 1000), MaxShards: 2,
		Admission: &admission.Config{
			Scope:     admission.ScopeGlobal,
			Occupancy: &admission.OccupancyConfig{ShedAbove: 0.5, ResumeBelow: 0.4},
		},
	})
	// 4 PMs × 16 slots = 64; the gate arms once occupancy reaches 0.5, so
	// the 32 fills succeed and the 33rd standard arrival sheds.
	for i := 0; i < 32; i++ {
		if _, err := fed.Arrive(mkVM(i, 1, 1)); err != nil {
			t.Fatalf("arrive %d: %v", i, err)
		}
	}
	_, err := fed.Arrive(mkVM(100, 1, 1))
	if !errors.Is(err, admission.ErrShed) {
		t.Fatalf("over-occupancy standard arrival error = %v, want ErrShed", err)
	}
	// Critical rides through the gate (ShedCritical false).
	if _, err := fed.ArriveClass(context.Background(), mkVM(101, 1, 1), admission.ClassCritical); err != nil {
		t.Fatalf("critical arrival shed: %v", err)
	}
	if fs := fed.FedStats(); fs.Sheds == 0 {
		t.Fatal("global sheds not counted")
	}
}

// skewFed builds a 2-shard federation with shard 0 loaded and shard 1 empty
// by driving shard 0 directly — the rebalancer reads shard snapshots, not the
// router, so this is a legitimate way to manufacture skew.
func skewFed(t *testing.T, reb RebalanceConfig, tracer telemetry.Tracer, loaded int) *Federation {
	t.Helper()
	fed := newFedT(t, Config{
		PMs: mkPool(2, 1000), MaxShards: 2, Rebalance: reb, Tracer: tracer,
	})
	for i := 0; i < loaded; i++ {
		if _, err := fed.Shard(0).Arrive(mkVM(i, 1, 1)); err != nil {
			t.Fatalf("loading shard 0: %v", err)
		}
	}
	return fed
}

// One rebalance round on a skewed fleet moves load until the spread settles
// inside the band; the next round is a no-op — convergence without
// oscillation.
func TestRebalanceConverges(t *testing.T) {
	reb := RebalanceConfig{SkewAbove: 0.2, SettleBelow: 0.1}
	// 2 PMs → 1 per shard → 16 slots per shard; 12 VMs on shard 0 give
	// occ0 = 0.75, occ1 = 0, spread 0.75 — far past the band.
	fed := skewFed(t, reb, nil, 12)

	moves, err := fed.RebalanceOnce()
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("skewed fleet rebalanced zero VMs")
	}
	snaps := fed.ShardSnapshots()
	occ0 := float64(snaps[0].Stats().VMs) / float64(snaps[0].Slots())
	occ1 := float64(snaps[1].Stats().VMs) / float64(snaps[1].Slots())
	spread := occ0 - occ1
	if spread < 0 {
		spread = -spread
	}
	if spread > reb.SkewAbove {
		t.Fatalf("spread %v still above SkewAbove %v after a round", spread, reb.SkewAbove)
	}
	if fed.Stats().VMs != 12 {
		t.Fatalf("fleet holds %d VMs after rebalance, want 12", fed.Stats().VMs)
	}
	again, err := fed.RebalanceOnce()
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Fatalf("settled fleet moved %d more VMs", again)
	}
	fs := fed.FedStats()
	if fs.RebalanceRounds != 1 || fs.RebalanceMoves != uint64(moves) || fs.RebalanceFailed != 0 {
		t.Fatalf("rebalance counters %+v, want 1 round / %d moves / 0 failed", fs, moves)
	}
	// Rebalanced VMs depart through the owner index from their new shard.
	for i := 0; i < 12; i++ {
		if err := fed.Depart(i); err != nil {
			t.Fatalf("depart %d after rebalance: %v", i, err)
		}
	}
}

// A balanced fleet never triggers a round.
func TestRebalanceNoOpOnBalance(t *testing.T) {
	fed := newFedT(t, Config{
		PMs: mkPool(2, 1000), MaxShards: 2,
		Rebalance: RebalanceConfig{SkewAbove: 0.2, SettleBelow: 0.1},
	})
	for i := 0; i < 12; i++ {
		shard := i % 2
		if _, err := fed.Shard(shard).Arrive(mkVM(i, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	moves, err := fed.RebalanceOnce()
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 {
		t.Fatalf("balanced fleet moved %d VMs", moves)
	}
	if fs := fed.FedStats(); fs.RebalanceRounds != 0 {
		t.Fatalf("balanced fleet counted %d rounds", fs.RebalanceRounds)
	}
}

// recTracer records migration trace events.
type recTracer struct {
	mu  sync.Mutex
	evs []telemetry.MigrationTraceEvent
}

func (r *recTracer) Enabled() bool { return true }
func (r *recTracer) Emit(e telemetry.Event) {
	if m, ok := e.(telemetry.MigrationTraceEvent); ok {
		r.mu.Lock()
		r.evs = append(r.evs, m)
		r.mu.Unlock()
	}
}

// The hysteresis guard: a VM moved in round r is not a candidate in round
// r+1, so consecutive rounds never bounce the same VM back and forth even
// when the donor flips sides between rounds.
func TestRebalanceNoReoscillation(t *testing.T) {
	tracer := &recTracer{}
	reb := RebalanceConfig{SkewAbove: 0.2, SettleBelow: 0.1}
	fed := skewFed(t, reb, tracer, 12) // shard 0: 12/16 = 0.75, shard 1 empty

	if _, err := fed.RebalanceOnce(); err != nil { // round 1: shard 0 donates
		t.Fatal(err)
	}
	// Flip the skew: drain shard 0 entirely so shard 1 (holding only VMs
	// moved in round 1) becomes the donor.
	p, err := fed.Shard(0).Snapshot().Placement()
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range p.VMs() {
		if err := fed.Shard(0).Depart(vm.ID); err != nil {
			t.Fatal(err)
		}
	}
	// Round 2: every candidate on the donor moved last round — the guard
	// must hold them all, moving nothing.
	moves, err := fed.RebalanceOnce()
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 {
		t.Fatalf("round 2 moved %d VMs that migrated in round 1", moves)
	}
	// Round 3: the embargo has lapsed; the still-skewed fleet rebalances.
	moves, err = fed.RebalanceOnce()
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("round 3 moved nothing despite lapsed embargo")
	}
	// No VM appears in two consecutive trace rounds.
	byRound := map[int]map[int]bool{}
	tracer.mu.Lock()
	defer tracer.mu.Unlock()
	for _, ev := range tracer.evs {
		if !ev.Planned {
			t.Fatalf("rebalance move traced unplanned: %+v", ev)
		}
		if byRound[ev.Interval] == nil {
			byRound[ev.Interval] = map[int]bool{}
		}
		byRound[ev.Interval][ev.VMID] = true
	}
	for round, vms := range byRound {
		for id := range vms {
			if byRound[round+1][id] {
				t.Fatalf("VM %d moved in consecutive rounds %d and %d", id, round, round+1)
			}
		}
	}
}

// Concurrent churn through every entry point, with the background rebalancer
// ticking — the -race workout.
func TestFederationConcurrentChurn(t *testing.T) {
	fed := newFedT(t, Config{
		PMs: mkPool(16, 100), MaxShards: 4, Seed: 11,
		Rebalance: RebalanceConfig{Interval: 1, SkewAbove: 0.3, SettleBelow: 0.15},
	})
	const clients, ops = 8, 100
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := (c + 1) * 1_000_000
			live := []int{}
			for i := 0; i < ops; i++ {
				if len(live) > 10 {
					if err := fed.Depart(live[0]); err != nil {
						t.Errorf("client %d depart: %v", c, err)
						return
					}
					live = live[1:]
				}
				id := base + i
				if _, err := fed.Arrive(mkVM(id, 2, 1)); err != nil {
					if errors.Is(err, cloud.ErrNoCapacity) {
						continue
					}
					t.Errorf("client %d arrive: %v", c, err)
					return
				}
				live = append(live, id)
			}
			for _, id := range live {
				if err := fed.Depart(id); err != nil {
					t.Errorf("client %d drain: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if got := fed.Stats().VMs; got != 0 {
		t.Fatalf("fleet holds %d VMs after full drain, want 0", got)
	}
	if err := fed.Close(); err != nil {
		t.Fatal(err)
	}
}

// Registry export: the shardsvc_* families land with per-shard labels.
func TestFederationMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	fed := newFedT(t, Config{PMs: mkPool(8, 100), MaxShards: 2, Registry: reg})
	for i := 0; i < 10; i++ {
		if _, err := fed.Arrive(mkVM(i, 2, 1)); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	sawRouted := false
	for name, v := range snap.Counters {
		fam, _ := telemetry.SplitSeries(name)
		if fam == "shardsvc_routed_total" && v > 0 {
			sawRouted = true
		}
	}
	if !sawRouted {
		t.Fatal("no shardsvc_routed_total series with a positive count")
	}
}

// Rebalance moves are internal migrations, not client arrivals: they bypass
// the per-shard admission pipeline on both legs (recipient move and donor
// rollback). With a gate that sheds every standard arrival past 10%
// occupancy, a skewed fleet must still converge without losing a VM, without
// a failed move, and without charging admission's shed accounting — under
// the old client-path Arrive the gate would shed the rollback and evict live
// capacity.
func TestRebalanceBypassesAdmission(t *testing.T) {
	reb := RebalanceConfig{SkewAbove: 0.2, SettleBelow: 0.1}
	fed := newFedT(t, Config{
		PMs: mkPool(2, 1000), MaxShards: 2, Rebalance: reb,
		Admission: &admission.Config{
			Occupancy: &admission.OccupancyConfig{ShedAbove: 0.1, ResumeBelow: 0.05},
		},
	})
	// Load shard 0 to 12/16 = 0.75 occupancy with critical arrivals — they
	// ride through its armed gate (ShedCritical off), shard 1 stays empty.
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		if _, err := fed.Shard(0).ArriveClass(ctx, mkVM(i, 1, 1), admission.ClassCritical); err != nil {
			t.Fatalf("loading shard 0: %v", err)
		}
	}
	moves, err := fed.RebalanceOnce()
	if err != nil {
		t.Fatalf("rebalance under armed per-shard gates: %v", err)
	}
	if moves < 3 {
		// Move 3 is the first the recipient's gate (armed at 2/16 = 0.125)
		// would have shed on the client path.
		t.Fatalf("moved %d VMs, want enough to cross the recipient's gate (≥ 3)", moves)
	}
	if got := fed.Stats().VMs; got != 12 {
		t.Fatalf("fleet holds %d VMs after rebalance, want 12 (no eviction)", got)
	}
	fs := fed.FedStats()
	if fs.RebalanceFailed != 0 || fs.RebalanceErrors != 0 {
		t.Fatalf("rebalance counters failed=%d errors=%d, want 0/0", fs.RebalanceFailed, fs.RebalanceErrors)
	}
	// The policy itself is still live for clients: both shards now sit past
	// ShedAbove, so a standard arrival sheds.
	if _, err := fed.Arrive(mkVM(100, 1, 1)); !errors.Is(err, admission.ErrShed) {
		t.Fatalf("standard client arrival err = %v, want ErrShed", err)
	}
}

// A round that aborts — here a real (non-capacity) duplicate-id failure on
// the recipient — is counted in shardsvc_rebalance_errors_total, so the
// background ticker's discarded error returns stay observable, and the VM is
// rolled back to the donor rather than lost.
func TestRebalanceErrorCountedAndRolledBack(t *testing.T) {
	reb := RebalanceConfig{SkewAbove: 0.2, SettleBelow: 0.1}
	fed := newFedT(t, Config{PMs: mkPool(2, 1000), MaxShards: 2, Rebalance: reb})
	// Shard 1 already hosts a VM with id 0 — the donor's first candidate id —
	// so the migration re-arrival fails with a real error, not capacity.
	if _, err := fed.Shard(1).Arrive(mkVM(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := fed.Shard(0).Arrive(mkVM(i, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	moves, err := fed.RebalanceOnce()
	if err == nil {
		t.Fatal("round with a duplicate-id collision reported no error")
	}
	if errors.Is(err, cloud.ErrNoCapacity) {
		t.Fatalf("abort error %v wrongly wraps ErrNoCapacity", err)
	}
	if moves != 0 {
		t.Fatalf("aborted round reported %d moves, want 0", moves)
	}
	fs := fed.FedStats()
	if fs.RebalanceErrors != 1 || fs.RebalanceFailed != 1 || fs.RebalanceRounds != 1 {
		t.Fatalf("counters errors=%d failed=%d rounds=%d, want 1/1/1",
			fs.RebalanceErrors, fs.RebalanceFailed, fs.RebalanceRounds)
	}
	// The rollback landed: nothing was evicted.
	if got := fed.Stats().VMs; got != 13 {
		t.Fatalf("fleet holds %d VMs, want 13", got)
	}
}

// A batch that aborts mid-apply (duplicate VM id — a real error, not
// capacity) returns the full still-unplaced remainder, audited against the
// failing shard's snapshot: placesvc clears the batch's own unplaced list on
// a fatal abort, so the federation must reconstruct which VMs landed before
// a caller can safely retry the rest.
func TestArriveBatchAbortReturnsRemainder(t *testing.T) {
	fed := newFedT(t, Config{PMs: mkPool(2, 1000), MaxShards: 1})
	if _, err := fed.Arrive(mkVM(7, 1, 1)); err != nil {
		t.Fatal(err)
	}
	batch := []cloud.VM{mkVM(20, 1, 1), mkVM(7, 1, 1), mkVM(21, 1, 1)}
	unplaced, err := fed.ArriveBatch(batch)
	if err == nil {
		t.Fatal("batch with duplicate VM id did not abort")
	}
	p, perr := fed.Shard(0).Snapshot().Placement()
	if perr != nil {
		t.Fatal(perr)
	}
	returned := map[int]bool{}
	for _, vm := range unplaced {
		returned[vm.ID] = true
		if _, ok := p.PMOf(vm.ID); ok {
			t.Errorf("VM %d reported unplaced but present in the placement", vm.ID)
		}
	}
	for _, vm := range batch {
		if _, ok := p.PMOf(vm.ID); !ok && !returned[vm.ID] {
			t.Errorf("VM %d neither placed nor reported unplaced", vm.ID)
		}
	}
	if returned[7] {
		t.Error("VM 7 reported unplaced despite hosting the original placement")
	}
}
