package obs

import (
	"math"
	"sync"
	"time"

	"repro/internal/queuing"
	"repro/internal/telemetry"
)

// ProbeOptions configures the streaming estimators. Zero values take the
// defaults noted per field.
type ProbeOptions struct {
	// IDCBlock is the number of simulator intervals aggregated into one
	// counting block for the index-of-dispersion estimator (the window
	// parameter of markov.IndexOfDispersion, applied online). Default 10.
	IDCBlock int
	// IDCBlocks is how many completed blocks the IDC ring keeps; the gauge
	// reads Var/Mean over that ring. Default 30.
	IDCBlocks int
	// DriftWindow is the number of recent intervals the windowed p_on /
	// p_off MLE sums transitions over. Default 100.
	DriftWindow int
	// CVWindow is the number of recent interarrival gaps the CV estimator
	// keeps. Default 256.
	CVWindow int
	// EWMAAlpha is the smoothing factor of the overflow-rate EWMA.
	// Default 0.1.
	EWMAAlpha float64
	// ForecastHorizon is the transient lookahead, in simulator intervals,
	// of the obs_transient_* gauges. Default 10 — the paper's "stabilized
	// merely within 10σ or so" scale.
	ForecastHorizon int
	// ForecastRho is the CVR budget the forecast reservation is derived
	// with (the ρ handed to MapCal on the drifting estimates). Default 0.01.
	ForecastRho float64
	// Forecasts is the transient forecast cache consulted by the
	// obs_transient_* gauges; nil uses queuing.SharedForecasts().
	Forecasts *queuing.ForecastCache
}

func (o ProbeOptions) withDefaults() ProbeOptions {
	if o.IDCBlock <= 0 {
		o.IDCBlock = 10
	}
	if o.IDCBlocks <= 1 {
		o.IDCBlocks = 30
	}
	if o.DriftWindow <= 0 {
		o.DriftWindow = 100
	}
	if o.CVWindow <= 1 {
		o.CVWindow = 256
	}
	if o.EWMAAlpha <= 0 || o.EWMAAlpha > 1 {
		o.EWMAAlpha = 0.1
	}
	if o.ForecastHorizon <= 0 {
		o.ForecastHorizon = 10
	}
	if o.ForecastRho <= 0 || o.ForecastRho >= 1 {
		o.ForecastRho = 0.01
	}
	if o.Forecasts == nil {
		o.Forecasts = queuing.SharedForecasts()
	}
	return o
}

// driftCell is one interval's transition tallies for the windowed MLE.
type driftCell struct {
	offOn, onOff    int
	fromOff, fromOn int
}

// Probes computes windowed online burstiness estimators from the trace
// stream and publishes them as gauges:
//
//	obs_idc                 — index of dispersion for counts of the fleet's
//	                          ON process (Mi et al. §II): Var/Mean of ON-VM
//	                          block sums over a ring of recent blocks
//	obs_on_fraction         — ON VMs / hosted VMs, last interval
//	obs_p_on, obs_p_off     — windowed MLE of the ON-OFF transition rates
//	                          (Σ transitions / Σ opportunities), drifting
//	                          with the live fleet rather than the declared
//	                          workload parameters
//	obs_interarrival_cv     — coefficient of variation of recent admission
//	                          interarrival gaps (CV > 1 ⇒ burstier than
//	                          Poisson)
//	obs_overflow_rate_ewma  — EWMA of per-interval violations per
//	                          powered-on PM
//	obs_transient_violation — closed-form predicted Pr{overrun} at the
//	                          configured horizon for a representative PM
//	                          (mean VMs per powered-on PM, proportional
//	                          busy count), with the reservation re-derived
//	                          by MapCal at the *drifting* p_on/p_off
//	                          estimates — the forward-looking complement of
//	                          the backward-looking overflow EWMA
//	obs_transient_mixing_steps — closed-form mixing time (intervals to
//	                          within 1% TV of stationarity) of that same
//	                          representative chain; how much history the
//	                          fleet's current burstiness makes relevant
//
// Undefined estimators (not enough data yet) read NaN, which the exposition
// writer renders verbatim.
//
// Probes is a telemetry.Tracer: feed it StepEvents (alone or in a Multi
// fan-out) and call ObserveArrival from admission paths. Gauge writes are
// atomic stores; the estimator state behind them is mutex-guarded.
type Probes struct {
	opt ProbeOptions

	idcG, onFracG, pOnG, pOffG, cvG, ewmaG *telemetry.Gauge
	violG, mixG                            *telemetry.Gauge

	mu sync.Mutex

	// Transient forecast state: the mixing-time memo key (the closed-form
	// scan is cheap but not free, and the quantized key changes rarely once
	// the drift window fills).
	mixValid        bool
	mixK            int
	mixPOn, mixPOff float64

	// IDC state: per-interval ON counts aggregated into blocks.
	blockAcc    float64
	blockFill   int
	blocks      []float64
	blockNext   int
	blockFilled int

	// p_on/p_off drift state: ring of per-interval transition tallies plus
	// running sums, and the previous interval's occupancy to derive the
	// opportunity counts.
	drift       []driftCell
	driftNext   int
	driftFilled int
	driftSum    driftCell
	prevVMs     int
	prevOn      int
	havePrev    bool

	// Interarrival CV state: ring of gaps with running sum / sum-of-squares
	// (recomputed from the ring periodically to shed float drift).
	gaps       []float64
	gapNext    int
	gapFilled  int
	gapSum     float64
	gapSumSq   float64
	gapPushes  int
	lastArrive time.Time
	haveArrive bool

	// Overflow EWMA state.
	ewma     float64
	haveEWMA bool
}

// NewProbes registers the probe gauges on reg and returns the estimator set.
func NewProbes(reg *telemetry.Registry, opt ProbeOptions) *Probes {
	opt = opt.withDefaults()
	reg.Help("obs_idc", "Streaming index of dispersion for counts of the fleet ON process (Mi et al. SII); NaN until two blocks complete.")
	reg.Help("obs_on_fraction", "Fraction of hosted VMs in the ON state, last simulated interval.")
	reg.Help("obs_p_on", "Windowed MLE of the OFF->ON transition probability observed in the live fleet.")
	reg.Help("obs_p_off", "Windowed MLE of the ON->OFF transition probability observed in the live fleet.")
	reg.Help("obs_interarrival_cv", "Coefficient of variation of recent admission interarrival gaps; NaN until two gaps observed.")
	reg.Help("obs_overflow_rate_ewma", "EWMA of per-interval capacity violations per powered-on PM.")
	reg.Help("obs_transient_violation", "Closed-form predicted probability that a representative PM overruns its MapCal reservation obs.ForecastHorizon intervals ahead, computed from the windowed p_on/p_off drift estimates; NaN until the drift estimators are defined.")
	reg.Help("obs_transient_mixing_steps", "Closed-form mixing time (intervals to within 1% total variation of stationarity) of the representative PM busy-blocks chain at the drift estimates; NaN until drift is defined or if beyond the search cap.")
	p := &Probes{
		opt:     opt,
		idcG:    reg.Gauge("obs_idc"),
		onFracG: reg.Gauge("obs_on_fraction"),
		pOnG:    reg.Gauge("obs_p_on"),
		pOffG:   reg.Gauge("obs_p_off"),
		cvG:     reg.Gauge("obs_interarrival_cv"),
		ewmaG:   reg.Gauge("obs_overflow_rate_ewma"),
		violG:   reg.Gauge("obs_transient_violation"),
		mixG:    reg.Gauge("obs_transient_mixing_steps"),
		blocks:  make([]float64, opt.IDCBlocks),
		drift:   make([]driftCell, opt.DriftWindow),
		gaps:    make([]float64, opt.CVWindow),
	}
	nan := math.NaN()
	p.idcG.Set(nan)
	p.onFracG.Set(nan)
	p.pOnG.Set(nan)
	p.pOffG.Set(nan)
	p.cvG.Set(nan)
	p.ewmaG.Set(nan)
	p.violG.Set(nan)
	p.mixG.Set(nan)
	return p
}

// Enabled returns true.
func (p *Probes) Enabled() bool { return true }

// Emit folds simulator step events into the estimators; other event kinds
// are ignored.
func (p *Probes) Emit(e telemetry.Event) {
	ev, ok := e.(telemetry.StepEvent)
	if !ok {
		return
	}
	p.mu.Lock()
	p.stepLocked(ev)
	p.mu.Unlock()
}

func (p *Probes) stepLocked(ev telemetry.StepEvent) {
	// ON fraction.
	if ev.VMs > 0 {
		p.onFracG.Set(float64(ev.OnVMs) / float64(ev.VMs))
	}

	// Windowed transition-rate MLE: opportunities come from the previous
	// interval's occupancy (a VM OFF at t-1 could have taken OFF→ON at t).
	if p.havePrev {
		cell := driftCell{
			offOn:   ev.OffOn,
			onOff:   ev.OnOff,
			fromOff: p.prevVMs - p.prevOn,
			fromOn:  p.prevOn,
		}
		old := p.drift[p.driftNext]
		if p.driftFilled == len(p.drift) {
			p.driftSum.offOn -= old.offOn
			p.driftSum.onOff -= old.onOff
			p.driftSum.fromOff -= old.fromOff
			p.driftSum.fromOn -= old.fromOn
		} else {
			p.driftFilled++
		}
		p.drift[p.driftNext] = cell
		p.driftNext = (p.driftNext + 1) % len(p.drift)
		p.driftSum.offOn += cell.offOn
		p.driftSum.onOff += cell.onOff
		p.driftSum.fromOff += cell.fromOff
		p.driftSum.fromOn += cell.fromOn
		if p.driftSum.fromOff > 0 {
			p.pOnG.Set(float64(p.driftSum.offOn) / float64(p.driftSum.fromOff))
		}
		if p.driftSum.fromOn > 0 {
			p.pOffG.Set(float64(p.driftSum.onOff) / float64(p.driftSum.fromOn))
		}
	}
	p.prevVMs, p.prevOn = ev.VMs, ev.OnVMs
	p.havePrev = ev.VMs > 0

	// IDC: aggregate per-interval ON counts into blocks; Var/Mean over the
	// block ring once at least two blocks completed.
	p.blockAcc += float64(ev.OnVMs)
	p.blockFill++
	if p.blockFill >= p.opt.IDCBlock {
		if p.blockFilled == len(p.blocks) {
			// ring full: overwrite oldest
		} else {
			p.blockFilled++
		}
		p.blocks[p.blockNext] = p.blockAcc
		p.blockNext = (p.blockNext + 1) % len(p.blocks)
		p.blockAcc, p.blockFill = 0, 0
		if p.blockFilled >= 2 {
			mean, varc := meanVar(p.blocks[:p.blockFilled])
			if mean > 0 {
				p.idcG.Set(varc / mean)
			}
		}
	}

	// Overflow-rate EWMA.
	if ev.PMsInUse > 0 {
		rate := float64(ev.Violations) / float64(ev.PMsInUse)
		if !p.haveEWMA {
			p.ewma = rate
			p.haveEWMA = true
		} else {
			p.ewma += p.opt.EWMAAlpha * (rate - p.ewma)
		}
		p.ewmaG.Set(p.ewma)
	}

	// Transient forecast gauges, fed by the drift estimates above.
	p.forecastLocked(ev)
}

// mixingTol and mixingMaxT parameterize the obs_transient_mixing_steps scan:
// 1% total variation, capped at ~10⁶ intervals (chains slower than that read
// NaN — at that point "not yet mixed" is the answer).
const (
	mixingTol  = 0.01
	mixingMaxT = 1 << 20
)

// forecastLocked refreshes obs_transient_violation and
// obs_transient_mixing_steps from the current drift estimates: it models the
// representative PM — mean VMs per powered-on PM, busy count proportional to
// the fleet ON fraction — re-derives its reservation with MapCal at the
// drifting (p_on, p_off), and asks the shared forecast cache for the
// probability that chain overruns the reservation ForecastHorizon intervals
// out. Estimates are quantized before keying the cache so a slowly drifting
// fleet maps onto a bounded set of closed-form solves. Gauges keep their last
// value while the estimators are undefined (no transitions in the window yet,
// or an empty fleet).
func (p *Probes) forecastLocked(ev telemetry.StepEvent) {
	if p.driftSum.fromOff <= 0 || p.driftSum.fromOn <= 0 || ev.VMs <= 0 || ev.PMsInUse <= 0 {
		return
	}
	pOn := quantizeProb(float64(p.driftSum.offOn) / float64(p.driftSum.fromOff))
	pOff := quantizeProb(float64(p.driftSum.onOff) / float64(p.driftSum.fromOn))
	if pOn <= 0 || pOff <= 0 {
		// A window with no OFF→ON (or no ON→OFF) transitions has no valid
		// irreducible chain to forecast with.
		return
	}
	k := int(math.Round(float64(ev.VMs) / float64(ev.PMsInUse)))
	if k < 1 {
		k = 1
	}
	busy := int(math.Round(float64(k) * float64(ev.OnVMs) / float64(ev.VMs)))
	if busy > k {
		busy = k
	}
	res, err := queuing.MapCal(k, pOn, pOff, p.opt.ForecastRho)
	if err != nil {
		return
	}
	if v, err := p.opt.Forecasts.ViolationAt(k, busy, pOn, pOff, p.opt.ForecastHorizon, res.K); err == nil {
		p.violG.Set(v)
	}
	p.mixingLocked(k, pOn, pOff)
}

// mixingLocked refreshes the mixing-time gauge, memoised on its quantized
// (k, p_on, p_off) key.
func (p *Probes) mixingLocked(k int, pOn, pOff float64) {
	if p.mixValid && p.mixK == k && p.mixPOn == pOn && p.mixPOff == pOff {
		return
	}
	p.mixValid = true
	p.mixK, p.mixPOn, p.mixPOff = k, pOn, pOff
	tr, err := queuing.NewTransient(k, pOn, pOff)
	if err != nil {
		p.mixG.Set(math.NaN())
		return
	}
	mt, err := tr.MixingTime(mixingTol, mixingMaxT)
	if err != nil {
		p.mixG.Set(math.NaN())
		return
	}
	p.mixG.Set(float64(mt))
}

// quantizeProb rounds a drift estimate to 1e-3 (three significant digits
// below 1e-3, so small rates stay distinguishable from zero) to keep the
// forecast-cache keys stable under estimator jitter.
func quantizeProb(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	if x >= 1e-3 {
		return math.Round(x*1000) / 1000
	}
	e := math.Floor(math.Log10(x))
	scale := math.Pow(10, 2-e)
	return math.Round(x*scale) / scale
}

// ObserveArrival folds one admission arrival (at time t) into the
// interarrival-CV estimator. Out-of-order timestamps clamp to a zero gap.
func (p *Probes) ObserveArrival(t time.Time) {
	p.mu.Lock()
	if p.haveArrive {
		gap := t.Sub(p.lastArrive).Seconds()
		if gap < 0 {
			gap = 0
		}
		if p.gapFilled == len(p.gaps) {
			old := p.gaps[p.gapNext]
			p.gapSum -= old
			p.gapSumSq -= old * old
		} else {
			p.gapFilled++
		}
		p.gaps[p.gapNext] = gap
		p.gapNext = (p.gapNext + 1) % len(p.gaps)
		p.gapSum += gap
		p.gapSumSq += gap * gap
		p.gapPushes++
		if p.gapPushes >= 4096 {
			// Re-derive the running sums from the ring to shed float
			// cancellation drift.
			p.gapPushes = 0
			p.gapSum, p.gapSumSq = 0, 0
			for _, g := range p.gaps[:p.gapFilled] {
				p.gapSum += g
				p.gapSumSq += g * g
			}
		}
		if p.gapFilled >= 2 {
			n := float64(p.gapFilled)
			mean := p.gapSum / n
			if mean > 0 {
				varc := p.gapSumSq/n - mean*mean
				if varc < 0 {
					varc = 0
				}
				p.cvG.Set(math.Sqrt(varc) / mean)
			}
		}
	}
	if t.After(p.lastArrive) {
		p.lastArrive = t
	}
	p.haveArrive = true
	p.mu.Unlock()
}

// meanVar returns the mean and population variance of xs.
func meanVar(xs []float64) (mean, variance float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	return mean, variance / n
}
