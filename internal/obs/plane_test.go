package obs

import (
	"flag"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestPlaneGaugesAndWindows(t *testing.T) {
	p := NewPlane(Options{})
	defer p.Close()

	// A timed step event feeds probes, recorder and the sim-step window.
	p.Emit(telemetry.StepEvent{
		Interval: 0, VMs: 10, OnVMs: 4, PMsInUse: 5, Violations: 1,
		DurationNs: int64(2 * time.Millisecond),
	})
	p.QueueWait.Observe(100 * time.Microsecond)
	p.BatchApply.Observe(time.Millisecond)
	p.SnapshotPublish.Observe(10 * time.Microsecond)
	p.AdmitLatency.Observe(300 * time.Microsecond)
	p.RefreshGauges()

	snap := p.Registry.Snapshot()
	for _, name := range []string{
		`placesvc_queue_wait_window_seconds{q="0.5"}`,
		`placesvc_batch_apply_window_seconds{q="0.95"}`,
		`placesvc_snapshot_publish_window_seconds{q="0.99"}`,
		`sim_step_window_seconds{q="0.5"}`,
		`loadgen_admit_window_seconds{q="0.99"}`,
	} {
		v, ok := snap.Gauges[name]
		if !ok {
			t.Fatalf("gauge %s not registered", name)
		}
		if math.IsNaN(v) || v <= 0 {
			t.Errorf("gauge %s = %g, want positive", name, v)
		}
	}
	if v := snap.Gauges["obs_on_fraction"]; math.Abs(v-0.4) > 1e-12 {
		t.Errorf("obs_on_fraction = %g, want 0.4", v)
	}
	if v := snap.Gauges["obs_flight_events"]; v != 1 {
		t.Errorf("obs_flight_events = %g, want 1", v)
	}
	if v := snap.Gauges["process_goroutines"]; v < 1 {
		t.Errorf("process_goroutines = %g", v)
	}
	if v, ok := snap.Gauges["process_heap_alloc_bytes"]; !ok || v <= 0 {
		t.Errorf("process_heap_alloc_bytes = %g, registered %v", v, ok)
	}
}

func TestPlaneSamplerRefreshes(t *testing.T) {
	p := NewPlane(Options{SamplePeriod: 5 * time.Millisecond})
	p.Start()
	defer p.Close()
	p.Emit(telemetry.StepEvent{Interval: 0, VMs: 2, OnVMs: 1, PMsInUse: 1})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p.Registry.Snapshot().Gauges["obs_flight_events"] == 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("sampler never refreshed obs_flight_events")
}

// TestPlaneServedEndpoints boots the full HTTP surface — /metrics plus the
// plane's mounts — and checks the flight dump, a pprof route, and that the
// exposition body passes the conformance validator (NaN probe gauges
// included).
func TestPlaneServedEndpoints(t *testing.T) {
	p := NewPlane(Options{})
	defer p.Close()
	p.Emit(telemetry.StepEvent{Interval: 3, VMs: 1, OnVMs: 1, PMsInUse: 1})
	p.RefreshGauges()

	srv, err := telemetry.Serve("127.0.0.1:0", p.Registry, p.Mounts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body := httpGet(t, base+"/metrics")
	if err := telemetry.ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), "obs_idc NaN") {
		t.Errorf("undefined IDC gauge not rendered as NaN:\n%s", body)
	}
	if !strings.Contains(string(body), "# HELP obs_on_fraction ") {
		t.Errorf("HELP line for obs_on_fraction missing")
	}

	dumpBody := httpGet(t, base+"/debug/flight")
	d, recs, err := ParseDump(dumpBody)
	if err != nil {
		t.Fatal(err)
	}
	if d.Trigger != TriggerHTTP || len(recs) != 1 {
		t.Fatalf("flight dump trigger %q events %d", d.Trigger, len(recs))
	}

	if got := httpGet(t, base+"/debug/pprof/cmdline"); len(got) == 0 {
		t.Error("pprof cmdline endpoint empty")
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestFlagsFlightFile runs the flag bundle end to end: -flight plus -trace,
// a crash event mid-run forcing an automatic dump, and the final dump on
// Close — two JSON lines in the flight file.
func TestFlagsFlightFile(t *testing.T) {
	dir := t.TempDir()
	flightPath := filepath.Join(dir, "flight.jsonl")
	tracePath := filepath.Join(dir, "trace.jsonl")

	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{
		"-flight", flightPath, "-flight-cap", "8", "-trace", tracePath,
	}); err != nil {
		t.Fatal(err)
	}
	tracer, err := f.Activate()
	if err != nil {
		t.Fatal(err)
	}
	if f.Plane() == nil {
		t.Fatal("no plane with -flight set")
	}
	tracer.Emit(telemetry.StepEvent{Interval: 1, VMs: 1, OnVMs: 1, PMsInUse: 1})
	tracer.Emit(telemetry.FaultEvent{Interval: 2, Type: telemetry.FaultPMCrash, PMID: 3})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(flightPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := nonEmptyLines(string(raw))
	if len(lines) != 2 {
		t.Fatalf("flight file has %d dumps, want 2 (crash + final):\n%s", len(lines), raw)
	}
	d0, recs0, err := ParseDump([]byte(lines[0]))
	if err != nil {
		t.Fatal(err)
	}
	if d0.Trigger != TriggerPMCrash || len(recs0) != 2 {
		t.Fatalf("first dump: trigger %q events %d, want pm_crash/2", d0.Trigger, len(recs0))
	}
	d1, _, err := ParseDump([]byte(lines[1]))
	if err != nil {
		t.Fatal(err)
	}
	if d1.Trigger != TriggerFinal {
		t.Fatalf("second dump trigger %q, want final", d1.Trigger)
	}

	// The -trace sink saw the same events.
	recs, err := telemetry.ReadTraceFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("JSONL trace has %d records, want 2", len(recs))
	}
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}
