package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

func TestFlightRecorderRingEviction(t *testing.T) {
	f := NewFlightRecorder(RecorderOptions{Cap: 4})
	for i := 0; i < 10; i++ {
		f.Emit(telemetry.StepEvent{Interval: i})
	}
	d := f.Snapshot(TriggerManual)
	if d.TotalEvents != 10 || d.DroppedEvents != 6 || len(d.Events) != 4 {
		t.Fatalf("total=%d dropped=%d kept=%d, want 10/6/4",
			d.TotalEvents, d.DroppedEvents, len(d.Events))
	}
	_, recs, err := ParseDump(mustJSON(t, d))
	if err != nil {
		t.Fatal(err)
	}
	// Oldest-first: intervals 6..9 with their original sequence numbers.
	for i, rec := range recs {
		se, ok := rec.Event.(*telemetry.StepEvent)
		if !ok {
			t.Fatalf("event %d: %T, want StepEvent", i, rec.Event)
		}
		if se.Interval != 6+i || rec.Seq != uint64(7+i) {
			t.Fatalf("event %d: interval %d seq %d, want %d/%d",
				i, se.Interval, rec.Seq, 6+i, 7+i)
		}
	}
}

func TestFlightRecorderAutoDumpTriggers(t *testing.T) {
	cases := []struct {
		name    string
		ev      telemetry.Event
		trigger string
	}{
		{"pm_crash", telemetry.FaultEvent{Interval: 3, Type: telemetry.FaultPMCrash, PMID: 7}, TriggerPMCrash},
		{"rollback", telemetry.RollbackEvent{Interval: 4, RolledBack: 2, Reason: "pm_crash"}, TriggerRollback},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var dumps []Dump
			f := NewFlightRecorder(RecorderOptions{Cap: 16, OnDump: func(d Dump) { dumps = append(dumps, d) }})
			f.Emit(telemetry.StepEvent{Interval: 1})
			f.Emit(telemetry.FaultEvent{Interval: 2, Type: telemetry.FaultPMRecover}) // not a trigger
			if len(dumps) != 0 {
				t.Fatalf("dump before trigger: %+v", dumps)
			}
			f.Emit(tc.ev)
			if len(dumps) != 1 {
				t.Fatalf("dumps = %d, want 1", len(dumps))
			}
			if dumps[0].Trigger != tc.trigger {
				t.Fatalf("trigger = %q, want %q", dumps[0].Trigger, tc.trigger)
			}
			if len(dumps[0].Events) != 3 {
				t.Fatalf("dump carries %d events, want 3", len(dumps[0].Events))
			}
		})
	}
}

func TestFlightRecorderStormTrigger(t *testing.T) {
	var dumps []Dump
	f := NewFlightRecorder(RecorderOptions{
		Cap:            32,
		StormThreshold: 5,
		OnDump:         func(d Dump) { dumps = append(dumps, d) },
	})
	// Rejections via the trace stream (overflow-reason placement events).
	for i := 0; i < 4; i++ {
		f.Emit(telemetry.PlacementEvent{VMID: i, Accepted: false, Reason: telemetry.ReasonOverflow})
	}
	if len(dumps) != 0 {
		t.Fatalf("dump below threshold after 4 rejections")
	}
	// Out-of-band rejections (the placesvc path) push it over.
	f.NoteRejections(1)
	if len(dumps) != 1 || dumps[0].Trigger != TriggerStorm {
		t.Fatalf("dumps = %+v, want one storm dump", dumps)
	}
	// The dump reset the counter; more rejections must re-accumulate, and
	// the cooldown (Cap/2 = 16 events) must pass.
	f.NoteRejections(5)
	if len(dumps) != 1 {
		t.Fatalf("storm dump fired inside cooldown")
	}
	for i := 0; i < 16; i++ {
		f.Emit(telemetry.StepEvent{Interval: i})
	}
	f.NoteRejections(5)
	if len(dumps) != 2 {
		t.Fatalf("dumps = %d after cooldown passed, want 2", len(dumps))
	}
}

func TestFlightRecorderShedStormTrigger(t *testing.T) {
	var dumps []Dump
	f := NewFlightRecorder(RecorderOptions{
		Cap:            32,
		StormThreshold: 5,
		OnDump:         func(d Dump) { dumps = append(dumps, d) },
	})
	f.NoteSheds(4)
	if len(dumps) != 0 {
		t.Fatalf("shed dump below threshold after 4 sheds")
	}
	// Sheds and capacity rejections accumulate independently: 4 sheds plus 4
	// rejections must not trip either storm.
	f.NoteRejections(4)
	if len(dumps) != 0 {
		t.Fatalf("storm fired from mixed sub-threshold counters: %+v", dumps)
	}
	f.NoteSheds(1)
	if len(dumps) != 1 || dumps[0].Trigger != TriggerShedStorm {
		t.Fatalf("dumps = %+v, want one storm:shed dump", dumps)
	}
	// The dump reset both counters; re-accumulate past the cooldown.
	for i := 0; i < 16; i++ {
		f.Emit(telemetry.StepEvent{Interval: i})
	}
	f.NoteSheds(5)
	if len(dumps) != 2 || dumps[1].Trigger != TriggerShedStorm {
		t.Fatalf("dumps = %d after cooldown passed, want a second storm:shed", len(dumps))
	}
	f.NoteSheds(0)
	f.NoteSheds(-3)
}

func TestFlightRecorderSkewTrigger(t *testing.T) {
	var dumps []Dump
	f := NewFlightRecorder(RecorderOptions{
		Cap:    32,
		OnDump: func(d Dump) { dumps = append(dumps, d) },
	})
	// Skew has no accumulation threshold: the first note dumps immediately.
	f.NoteSkew()
	if len(dumps) != 1 || dumps[0].Trigger != TriggerSkew {
		t.Fatalf("dumps = %+v, want one storm:skew dump", dumps)
	}
	// A second note inside the cooldown (Cap/2 = 16 events) is suppressed.
	f.NoteSkew()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d inside cooldown, want 1", len(dumps))
	}
	for i := 0; i < 16; i++ {
		f.Emit(telemetry.StepEvent{Interval: i})
	}
	f.NoteSkew()
	if len(dumps) != 2 || dumps[1].Trigger != TriggerSkew {
		t.Fatalf("dumps = %d after cooldown passed, want a second storm:skew", len(dumps))
	}
}

func TestFlightRecorderAcceptedPlacementsDoNotCount(t *testing.T) {
	var dumps int
	f := NewFlightRecorder(RecorderOptions{Cap: 16, StormThreshold: 2, OnDump: func(Dump) { dumps++ }})
	for i := 0; i < 10; i++ {
		f.Emit(telemetry.PlacementEvent{VMID: i, Accepted: true, Reason: telemetry.ReasonFits})
		f.Emit(telemetry.PlacementEvent{VMID: i, Accepted: false, Reason: telemetry.ReasonVMCap})
	}
	if dumps != 0 {
		t.Fatalf("non-overflow placements triggered %d storm dumps", dumps)
	}
}

func TestFlightHandler(t *testing.T) {
	f := NewFlightRecorder(RecorderOptions{Cap: 8})
	f.Emit(telemetry.StepEvent{Interval: 42, Violations: 1})
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var d Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Trigger != TriggerHTTP || len(d.Events) != 1 {
		t.Fatalf("dump = %+v", d)
	}
	_, recs, err := ParseDump(mustJSON(t, d))
	if err != nil {
		t.Fatal(err)
	}
	if se := recs[0].Event.(*telemetry.StepEvent); se.Interval != 42 {
		t.Fatalf("roundtrip interval = %d", se.Interval)
	}
}

// TestFlightRecorderRace drives concurrent emitters against snapshot dumps;
// meaningful under -race (satellite: flight-recorder emit/dump race
// coverage).
func TestFlightRecorderRace(t *testing.T) {
	f := NewFlightRecorder(RecorderOptions{Cap: 64, OnDump: func(Dump) {}})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				switch i % 3 {
				case 0:
					f.Emit(telemetry.StepEvent{Interval: i})
				case 1:
					f.Emit(telemetry.FaultEvent{Interval: i, Type: telemetry.FaultPMCrash, PMID: g})
				default:
					f.NoteRejections(1)
				}
			}
		}(g)
	}
	for i := 0; i < 100; i++ {
		d := f.Snapshot(TriggerManual)
		if len(d.Events) > 64 {
			t.Errorf("dump of %d events exceeds cap", len(d.Events))
			break
		}
	}
	wg.Wait()
	// 2 of every 3 iterations emit an event; NoteRejections does not.
	if got := f.Stats().Total; got != 4*2000 {
		t.Fatalf("Total = %d, want %d", got, 4*2000)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
