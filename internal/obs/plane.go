package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Options configures a Plane. The zero value is usable: a fresh registry, a
// 4096-event flight recorder with no dump sink, one-minute rolling windows,
// and a 500ms gauge sampler.
type Options struct {
	// Registry receives every gauge the plane exports. Nil creates one.
	Registry *telemetry.Registry
	// FlightCap / OnDump / StormThreshold / FlightCooldown configure the
	// flight recorder; see RecorderOptions.
	OnDump         func(Dump)
	FlightCap      int
	StormThreshold int
	FlightCooldown int
	// Windows and WindowPeriod shape every rolling latency window:
	// quantiles cover the last Windows×WindowPeriod. Defaults 12 × 5s.
	Windows      int
	WindowPeriod time.Duration
	// SamplePeriod is the gauge-refresh / runtime-stats cadence of the
	// sampler goroutine started by Start. Default 500ms.
	SamplePeriod time.Duration
	// Probe tunes the streaming burstiness estimators.
	Probe ProbeOptions
}

// rolling quantiles exported per window, with their gauge label values.
var windowQs = []struct {
	q     float64
	label string
}{
	{0.50, "0.5"},
	{0.95, "0.95"},
	{0.99, "0.99"},
}

// quantGauge binds one window×quantile pair to its gauge.
type quantGauge struct {
	win *WindowedTimer
	q   float64
	g   *telemetry.Gauge
}

// Plane is the assembled live observability plane: flight recorder +
// burstiness probes + rolling latency windows + runtime stats, all exporting
// through one telemetry.Registry and one HTTP mux.
//
// A Plane is a telemetry.Tracer: pass it (or a Multi fan-out containing it)
// as a run's tracer and the recorder and probes see every event, and
// simulator StepEvents carrying timings feed the sim_step window. The
// admission-side windows (QueueWait, BatchApply, SnapshotPublish,
// AdmitLatency) are fed directly by placesvc and loadgen.
type Plane struct {
	Registry *telemetry.Registry
	Recorder *FlightRecorder
	Probes   *Probes

	// Rolling latency windows. Quantile gauges
	// <name>_window_seconds{q="..."} refresh on the sampler tick.
	QueueWait       *WindowedTimer // placesvc: submit → commit pickup
	BatchApply      *WindowedTimer // placesvc: whole-batch apply span
	SnapshotPublish *WindowedTimer // placesvc: read-snapshot rebuild+publish
	StepTime        *WindowedTimer // simulator: whole step()
	AdmitLatency    *WindowedTimer // loadgen: end-to-end Arrive call

	quants []quantGauge

	flightEvents  *telemetry.Gauge
	flightDropped *telemetry.Gauge
	flightDumps   *telemetry.Gauge

	goroutines  *telemetry.Gauge
	heapAlloc   *telemetry.Gauge
	heapSys     *telemetry.Gauge
	gcCycles    *telemetry.Gauge
	gcPauseLast *telemetry.Gauge

	samplePeriod time.Duration

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewPlane builds a plane. Call Start to launch the gauge sampler and Close
// when the run finishes.
func NewPlane(o Options) *Plane {
	reg := o.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if o.Windows <= 0 {
		o.Windows = 12
	}
	if o.WindowPeriod <= 0 {
		o.WindowPeriod = 5 * time.Second
	}
	if o.SamplePeriod <= 0 {
		o.SamplePeriod = 500 * time.Millisecond
	}
	p := &Plane{
		Registry: reg,
		Recorder: NewFlightRecorder(RecorderOptions{
			Cap:            o.FlightCap,
			OnDump:         o.OnDump,
			StormThreshold: o.StormThreshold,
			Cooldown:       o.FlightCooldown,
		}),
		Probes:       NewProbes(reg, o.Probe),
		samplePeriod: o.SamplePeriod,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	mkWin := func() *WindowedTimer {
		return NewWindowedTimer(o.Windows, o.WindowPeriod, nil)
	}
	p.QueueWait = mkWin()
	p.BatchApply = mkWin()
	p.SnapshotPublish = mkWin()
	p.StepTime = mkWin()
	p.AdmitLatency = mkWin()

	windows := []struct {
		family string
		help   string
		win    *WindowedTimer
	}{
		{"placesvc_queue_wait_window_seconds", "Rolling quantiles of admission-request queue wait (submit to committer pickup).", p.QueueWait},
		{"placesvc_batch_apply_window_seconds", "Rolling quantiles of the committer's whole-batch apply span.", p.BatchApply},
		{"placesvc_snapshot_publish_window_seconds", "Rolling quantiles of the read-snapshot rebuild and publish span.", p.SnapshotPublish},
		{"sim_step_window_seconds", "Rolling quantiles of whole simulator steps.", p.StepTime},
		{"loadgen_admit_window_seconds", "Rolling quantiles of end-to-end Arrive latency measured by loadgen.", p.AdmitLatency},
	}
	for _, w := range windows {
		reg.Help(w.family, w.help)
		for _, q := range windowQs {
			g := reg.Gauge(telemetry.WithLabels(w.family, "q", q.label))
			p.quants = append(p.quants, quantGauge{win: w.win, q: q.q, g: g})
		}
	}

	reg.Help("obs_flight_events", "Events the flight recorder has seen since start.")
	reg.Help("obs_flight_dropped", "Events evicted from the flight ring (seen minus retained).")
	reg.Help("obs_flight_dumps", "Flight dumps taken, all triggers.")
	p.flightEvents = reg.Gauge("obs_flight_events")
	p.flightDropped = reg.Gauge("obs_flight_dropped")
	p.flightDumps = reg.Gauge("obs_flight_dumps")

	reg.Help("process_goroutines", "Live goroutines, sampled.")
	reg.Help("process_heap_alloc_bytes", "Bytes of allocated heap objects, sampled.")
	reg.Help("process_heap_sys_bytes", "Bytes of heap obtained from the OS, sampled.")
	reg.Help("process_gc_cycles", "Completed GC cycles, sampled.")
	reg.Help("process_gc_pause_last_seconds", "Duration of the most recent GC stop-the-world pause.")
	p.goroutines = reg.Gauge("process_goroutines")
	p.heapAlloc = reg.Gauge("process_heap_alloc_bytes")
	p.heapSys = reg.Gauge("process_heap_sys_bytes")
	p.gcCycles = reg.Gauge("process_gc_cycles")
	p.gcPauseLast = reg.Gauge("process_gc_pause_last_seconds")

	return p
}

// Enabled returns true.
func (p *Plane) Enabled() bool { return true }

// Emit fans the event to the flight recorder and the probes, and routes
// timed StepEvents into the sim-step window.
func (p *Plane) Emit(e telemetry.Event) {
	p.Recorder.Emit(e)
	p.Probes.Emit(e)
	if se, ok := e.(telemetry.StepEvent); ok && se.DurationNs > 0 {
		p.StepTime.ObserveSeconds(float64(se.DurationNs) / 1e9)
	}
}

// ObserveRejections forwards capacity-rejection tallies from paths outside
// the trace stream (placesvc) to the flight recorder's storm trigger.
func (p *Plane) ObserveRejections(n int) { p.Recorder.NoteRejections(n) }

// ObserveSheds forwards admission-policy shed tallies (placesvc's admission
// layer, which also sits outside the trace stream) to the flight recorder's
// storm:shed trigger.
func (p *Plane) ObserveSheds(n int) { p.Recorder.NoteSheds(n) }

// ObserveSkew forwards a shardsvc rebalancer skew detection — inter-shard
// headroom spread beyond the hysteresis band — to the flight recorder's
// storm:skew trigger, dumping the recent event window for post-mortem of
// what drove the imbalance.
func (p *Plane) ObserveSkew() { p.Recorder.NoteSkew() }

// RefreshGauges recomputes every sampled gauge: rolling window quantiles,
// flight-recorder stats, and runtime memory/goroutine stats. The sampler
// calls it on a timer; tests and Close call it directly.
func (p *Plane) RefreshGauges() {
	byWin := make(map[*WindowedTimer]telemetry.HistogramSnapshot, 5)
	for _, qg := range p.quants {
		hs, ok := byWin[qg.win]
		if !ok {
			hs = qg.win.Snapshot()
			byWin[qg.win] = hs
		}
		qg.g.Set(hs.Quantile(qg.q))
	}

	st := p.Recorder.Stats()
	p.flightEvents.Set(float64(st.Total))
	p.flightDropped.Set(float64(st.Dropped))
	p.flightDumps.Set(float64(st.Dumps))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.goroutines.Set(float64(runtime.NumGoroutine()))
	p.heapAlloc.Set(float64(ms.HeapAlloc))
	p.heapSys.Set(float64(ms.HeapSys))
	p.gcCycles.Set(float64(ms.NumGC))
	if ms.NumGC > 0 {
		p.gcPauseLast.Set(float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9)
	}
}

// Start launches the background sampler refreshing gauges every
// SamplePeriod. Idempotent.
func (p *Plane) Start() {
	p.startOnce.Do(func() {
		go func() {
			defer close(p.done)
			t := time.NewTicker(p.samplePeriod)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					p.RefreshGauges()
				case <-p.stop:
					return
				}
			}
		}()
	})
}

// Close stops the sampler, refreshes gauges one final time, and — when a
// dump sink is attached — takes a final flight dump so every run ends with
// its last events on record.
func (p *Plane) Close() {
	p.stopOnce.Do(func() {
		close(p.stop)
		p.startOnce.Do(func() { close(p.done) }) // never started: unblock the wait
		<-p.done
		p.RefreshGauges()
		if sink := p.Recorder.onDump; sink != nil {
			sink(p.Recorder.Snapshot(TriggerFinal))
		}
	})
}

// Mounts returns the HTTP handlers the plane serves beside /metrics: the
// flight-dump endpoint and the pprof suite.
func (p *Plane) Mounts() []telemetry.Mount {
	return []telemetry.Mount{
		{Pattern: "/debug/flight", Handler: p.Recorder.Handler()},
		{Pattern: "/debug/pprof/", Handler: http.HandlerFunc(pprof.Index)},
		{Pattern: "/debug/pprof/cmdline", Handler: http.HandlerFunc(pprof.Cmdline)},
		{Pattern: "/debug/pprof/profile", Handler: http.HandlerFunc(pprof.Profile)},
		{Pattern: "/debug/pprof/symbol", Handler: http.HandlerFunc(pprof.Symbol)},
		{Pattern: "/debug/pprof/trace", Handler: http.HandlerFunc(pprof.Trace)},
	}
}
