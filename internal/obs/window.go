// Package obs is the live observability plane: a flight recorder of recent
// trace events, streaming burstiness probes (index of dispersion,
// interarrival CV, ON-fraction and p_on drift, overflow-rate EWMA), and
// sliding-window latency trackers giving rolling p50/p95/p99 for the hot
// placesvc and simulator paths. It layers on internal/telemetry — every
// component either implements telemetry.Tracer or exports through a
// telemetry.Registry — and depends on nothing else.
//
// The plane is built to ride in the hot path: enabling it must cost
// single-digit percent on BenchmarkScaleStep and BenchmarkServeAdmit, and it
// never perturbs simulation state (the fixed-shard determinism contract —
// bit-identical Reports with obs on or off — is covered by test).
package obs

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// DefWindowBounds are the default WindowedTimer bucket bounds in seconds:
// finer-grained at the microsecond end than telemetry.DefDurationBuckets
// because the spans it tracks (queue wait, batch apply, snapshot publish,
// sim steps) live between 100ns and ~1s.
var DefWindowBounds = []float64{
	250e-9, 500e-9, 1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6, 50e-6, 100e-6,
	250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
	250e-3, 500e-3, 1, 2.5, 5,
}

// WindowedTimer is a sliding-window duration histogram: a ring of per-window
// bucket arrays rotated on a fixed period, merged on read. Quantiles read
// from it therefore cover roughly the last windows×period of observations
// and forget anything older — the rolling-SLO view, where a cumulative
// histogram would dilute a fresh regression under hours of healthy history.
//
// Observe is mutex-guarded (one lock, two array writes); Snapshot merges the
// live windows into a telemetry.HistogramSnapshot so quantile estimation is
// shared with the cumulative histograms rather than reimplemented.
type WindowedTimer struct {
	mu     sync.Mutex
	bounds []float64
	period time.Duration
	now    func() time.Time

	wins   [][]uint64 // per window: len(bounds)+1 non-cumulative counts
	sums   []float64
	counts []uint64
	cur    int       // window receiving observations
	start  time.Time // start of the current window; zero until first touch
}

// NewWindowedTimer returns a timer of `windows` sub-windows each `period`
// long. Non-positive arguments take the defaults (12 windows × 5s — a one
// minute rolling view); nil bounds take DefWindowBounds.
func NewWindowedTimer(windows int, period time.Duration, bounds []float64) *WindowedTimer {
	if windows <= 0 {
		windows = 12
	}
	if period <= 0 {
		period = 5 * time.Second
	}
	if bounds == nil {
		bounds = DefWindowBounds
	}
	sorted := make([]float64, len(bounds))
	copy(sorted, bounds)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] <= sorted[i-1] {
			panic("obs: window bounds not strictly increasing")
		}
	}
	w := &WindowedTimer{
		bounds: sorted,
		period: period,
		now:    time.Now,
		wins:   make([][]uint64, windows),
		sums:   make([]float64, windows),
		counts: make([]uint64, windows),
	}
	for i := range w.wins {
		w.wins[i] = make([]uint64, len(sorted)+1)
	}
	return w
}

// Observe records one duration.
func (w *WindowedTimer) Observe(d time.Duration) { w.ObserveSeconds(d.Seconds()) }

// ObserveSeconds records one sample, in seconds.
func (w *WindowedTimer) ObserveSeconds(v float64) {
	w.observeAt(w.now(), v)
}

// ObserveAt records one duration against a caller-supplied clock reading —
// the hot-path variant for callers that already timed a span and can lend
// that timestamp for window rotation instead of paying another clock read.
func (w *WindowedTimer) ObserveAt(now time.Time, d time.Duration) {
	w.observeAt(now, d.Seconds())
}

func (w *WindowedTimer) observeAt(now time.Time, v float64) {
	w.mu.Lock()
	w.advance(now)
	i := sort.SearchFloat64s(w.bounds, v)
	w.wins[w.cur][i]++
	w.sums[w.cur] += v
	w.counts[w.cur]++
	w.mu.Unlock()
}

// advance rotates expired windows so w.cur covers the interval containing
// now. Callers hold the lock.
func (w *WindowedTimer) advance(now time.Time) {
	if w.start.IsZero() {
		w.start = now
		return
	}
	elapsed := now.Sub(w.start)
	if elapsed < w.period {
		return
	}
	steps := int(elapsed / w.period)
	if steps >= len(w.wins) {
		// Idle longer than the whole ring: every window expired.
		for i := range w.wins {
			clearWindow(w.wins[i])
			w.sums[i] = 0
			w.counts[i] = 0
		}
		w.cur = 0
		w.start = now
		return
	}
	for ; steps > 0; steps-- {
		w.cur = (w.cur + 1) % len(w.wins)
		clearWindow(w.wins[w.cur])
		w.sums[w.cur] = 0
		w.counts[w.cur] = 0
		w.start = w.start.Add(w.period)
	}
}

func clearWindow(counts []uint64) {
	for i := range counts {
		counts[i] = 0
	}
}

// Snapshot merges the live windows into one cumulative histogram snapshot.
func (w *WindowedTimer) Snapshot() telemetry.HistogramSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.advance(w.now())
	hs := telemetry.HistogramSnapshot{
		Buckets: make([]telemetry.BucketCount, len(w.bounds)+1),
	}
	var cum uint64
	for i := range hs.Buckets {
		for win := range w.wins {
			cum += w.wins[win][i]
		}
		bound := math.Inf(1)
		if i < len(w.bounds) {
			bound = w.bounds[i]
		}
		hs.Buckets[i] = telemetry.BucketCount{UpperBound: bound, Count: cum}
	}
	for i := range w.sums {
		hs.Sum += w.sums[i]
		hs.Count += w.counts[i]
	}
	return hs
}

// Quantile estimates the q-quantile over the rolling window; NaN when no
// samples are live.
func (w *WindowedTimer) Quantile(q float64) float64 {
	return w.Snapshot().Quantile(q)
}

// Quantiles estimates several quantiles from one merge — the gauge-refresh
// path, which reads p50/p95/p99 together every sampler tick.
func (w *WindowedTimer) Quantiles(qs ...float64) []float64 {
	hs := w.Snapshot()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = hs.Quantile(q)
	}
	return out
}
