package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for window-rotation tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestWindowedTimerQuantiles(t *testing.T) {
	w := NewWindowedTimer(4, time.Second, nil)
	clock := newFakeClock()
	w.now = clock.Now

	for i := 0; i < 100; i++ {
		w.ObserveSeconds(1e-3) // all in the 1ms bucket region
	}
	hs := w.Snapshot()
	if hs.Count != 100 {
		t.Fatalf("Count = %d, want 100", hs.Count)
	}
	p50 := w.Quantile(0.5)
	if p50 <= 0 || p50 > 2.5e-3 {
		t.Fatalf("p50 = %g, want within (0, 2.5ms]", p50)
	}
}

func TestWindowedTimerExpiry(t *testing.T) {
	clock := newFakeClock()
	w := NewWindowedTimer(3, time.Second, nil)
	w.now = clock.Now

	w.ObserveSeconds(0.01)
	clock.Advance(1100 * time.Millisecond)
	w.ObserveSeconds(0.02)
	if got := w.Snapshot().Count; got != 2 {
		t.Fatalf("both windows live: Count = %d, want 2", got)
	}

	// Rotate past the first observation's window: 3-window ring, so after 3
	// more periods the 0.01 sample is gone but the 0.02 one may also expire;
	// advance exactly so that only the first drops (first is in window 0,
	// second in window 1; advancing 2 more periods drops window 0 only).
	clock.Advance(2 * time.Second)
	if got := w.Snapshot().Count; got != 1 {
		t.Fatalf("after first window expired: Count = %d, want 1", got)
	}

	// Idle past the whole ring: everything forgotten.
	clock.Advance(10 * time.Second)
	if got := w.Snapshot().Count; got != 0 {
		t.Fatalf("after full expiry: Count = %d, want 0", got)
	}
	if !math.IsNaN(w.Quantile(0.99)) {
		t.Fatalf("quantile of empty window = %g, want NaN", w.Quantile(0.99))
	}
}

func TestWindowedTimerQuantilesBatch(t *testing.T) {
	w := NewWindowedTimer(4, time.Minute, nil)
	for i := 0; i < 1000; i++ {
		w.ObserveSeconds(float64(i) * 1e-6) // 0..1ms uniform-ish
	}
	qs := w.Quantiles(0.5, 0.99)
	if len(qs) != 2 {
		t.Fatalf("Quantiles len = %d", len(qs))
	}
	if !(qs[0] < qs[1]) {
		t.Fatalf("p50 %g not below p99 %g", qs[0], qs[1])
	}
}

// TestWindowedTimerRace drives concurrent observers against snapshot merges;
// meaningful under -race (satellite: window-quantile merge race coverage).
func TestWindowedTimerRace(t *testing.T) {
	w := NewWindowedTimer(4, 10*time.Millisecond, nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				w.ObserveSeconds(float64(g*1000+i) * 1e-9)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		_ = w.Quantiles(0.5, 0.95, 0.99)
	}
	wg.Wait()
	if w.Snapshot().Count == 0 {
		t.Fatal("no observations recorded")
	}
}
