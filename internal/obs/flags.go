package obs

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/telemetry"
)

// Flags bundles the observability CLI flags shared by every cmd — the
// superset of telemetry.Flags:
//
//	-trace <file>         full JSONL event trace
//	-metrics-addr <addr>  /metrics, /debug/vars, /debug/flight, /debug/pprof
//	-flight <file>        flight-recorder dump sink (one JSON dump per line)
//	-flight-cap <n>       flight ring capacity in events
//
// Setting -flight or -metrics-addr builds a Plane: the flight recorder and
// burstiness probes join the run's tracer fan-out, fault events and
// rejection storms dump to the -flight file, and the metrics endpoint gains
// the live ops routes.
//
// Usage mirrors telemetry.Flags:
//
//	var of obs.Flags
//	of.Register(fs)
//	fs.Parse(args)
//	tracer, err := of.Activate()
//	defer of.Close()
type Flags struct {
	Trace       string
	MetricsAddr string
	Flight      string
	FlightCap   int

	plane      *Plane
	file       *os.File
	jsonl      *telemetry.JSONL
	flightFile *os.File
	flightMu   sync.Mutex
	flightErr  error
	server     *telemetry.Server
}

// Register binds the flags onto fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Trace, "trace", "", "write a JSONL event trace to this path")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars, /debug/flight and /debug/pprof on host:port for the run")
	fs.StringVar(&f.Flight, "flight", "", "write flight-recorder dumps (fault-triggered + final) to this path, one JSON dump per line")
	fs.IntVar(&f.FlightCap, "flight-cap", 0, "flight recorder ring capacity in events (default 4096)")
}

// Activate opens the configured sinks and returns the tracer to instrument
// with: a JSONL sink when -trace is set, the obs plane (flight recorder +
// probes, plus the HTTP endpoint and metrics bridge when -metrics-addr is
// set) when -flight or -metrics-addr is, all fanned out together, and Nop
// when nothing is enabled. Call Close when the run finishes.
func (f *Flags) Activate() (telemetry.Tracer, error) {
	tracers := make([]telemetry.Tracer, 0, 3)
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return nil, fmt.Errorf("obs: -trace: %w", err)
		}
		f.file = file
		f.jsonl = telemetry.NewJSONL(file)
		tracers = append(tracers, f.jsonl)
	}
	if f.Flight != "" || f.MetricsAddr != "" {
		var sink func(Dump)
		if f.Flight != "" {
			file, err := os.Create(f.Flight)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("obs: -flight: %w", err)
			}
			f.flightFile = file
			sink = f.writeDump
		}
		f.plane = NewPlane(Options{
			FlightCap: f.FlightCap,
			OnDump:    sink,
		})
		f.plane.Start()
		tracers = append(tracers, f.plane)
		if f.MetricsAddr != "" {
			server, err := telemetry.Serve(f.MetricsAddr, f.plane.Registry, f.plane.Mounts()...)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("obs: -metrics-addr: %w", err)
			}
			f.server = server
			tracers = append(tracers, telemetry.NewMetrics(f.plane.Registry))
		}
	}
	return telemetry.Multi(tracers...), nil
}

// writeDump appends one dump line to the -flight file, keeping the first
// write error sticky.
func (f *Flags) writeDump(d Dump) {
	f.flightMu.Lock()
	defer f.flightMu.Unlock()
	if f.flightErr != nil || f.flightFile == nil {
		return
	}
	f.flightErr = d.WriteLine(f.flightFile)
}

// Plane returns the live plane (nil unless -flight or -metrics-addr was set
// and Activate has run).
func (f *Flags) Plane() *Plane { return f.plane }

// Registry returns the registry backing the plane (nil when no plane).
func (f *Flags) Registry() *telemetry.Registry {
	if f.plane == nil {
		return nil
	}
	return f.plane.Registry
}

// MetricsURL returns the served /metrics URL, or "" when disabled.
func (f *Flags) MetricsURL() string {
	if f.server == nil {
		return ""
	}
	return "http://" + f.server.Addr() + "/metrics"
}

// Close flushes and releases every sink Activate opened: the HTTP server
// first, then the plane (whose Close takes the final flight dump), then the
// files. It returns the first error — including sticky JSONL or flight
// write errors.
func (f *Flags) Close() error {
	var first error
	if f.server != nil {
		if err := f.server.Close(); err != nil && first == nil {
			first = err
		}
		f.server = nil
	}
	if f.plane != nil {
		f.plane.Close()
		f.plane = nil
	}
	f.flightMu.Lock()
	if f.flightErr != nil && first == nil {
		first = f.flightErr
	}
	if f.flightFile != nil {
		if err := f.flightFile.Close(); err != nil && first == nil {
			first = err
		}
		f.flightFile = nil
	}
	f.flightMu.Unlock()
	if f.jsonl != nil {
		if err := f.jsonl.Err(); err != nil && first == nil {
			first = err
		}
		f.jsonl = nil
	}
	if f.file != nil {
		if err := f.file.Close(); err != nil && first == nil {
			first = err
		}
		f.file = nil
	}
	return first
}
