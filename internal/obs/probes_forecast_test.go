package obs

import (
	"math"
	"testing"

	"repro/internal/queuing"
	"repro/internal/telemetry"
)

// TestProbesTransientForecastGauges checks the forward-looking probe family
// end to end: after the drift estimators come alive, obs_transient_violation
// must equal the closed-form forecast for the representative PM (mean VMs per
// powered-on PM, proportional busy count, MapCal reservation at the drift
// estimates), and obs_transient_mixing_steps the closed-form mixing time of
// that chain — bit-identical to direct queuing calls.
func TestProbesTransientForecastGauges(t *testing.T) {
	const horizon = 25
	cache := queuing.NewForecastCache()
	p, reg := newTestProbes(ProbeOptions{ForecastHorizon: horizon, Forecasts: cache})

	p.Emit(telemetry.StepEvent{Interval: 0, VMs: 10, OnVMs: 5, PMsInUse: 2})
	if v := gauge(t, reg, "obs_transient_violation"); !math.IsNaN(v) {
		t.Fatalf("violation gauge before drift defined = %g, want NaN", v)
	}
	if v := gauge(t, reg, "obs_transient_mixing_steps"); !math.IsNaN(v) {
		t.Fatalf("mixing gauge before drift defined = %g, want NaN", v)
	}

	// Interval 1: 2 OFF→ON of 5 OFF, 2 ON→OFF of 5 ON ⇒ p̂_on = p̂_off = 0.4,
	// and the symmetric churn keeps the estimates at 0.4 on every later
	// interval too. Representative PM: k = round(10/2) = 5 VMs,
	// busy = round(5 · 5/10) = 3 (round half away from zero).
	p.Emit(telemetry.StepEvent{Interval: 1, VMs: 10, OnVMs: 5, OffOn: 2, OnOff: 2, PMsInUse: 2})

	res, err := queuing.MapCal(5, 0.4, 0.4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	wantViol, err := queuing.NewForecastCache().ViolationAt(5, 3, 0.4, 0.4, horizon, res.K)
	if err != nil {
		t.Fatal(err)
	}
	if got := gauge(t, reg, "obs_transient_violation"); got != wantViol {
		t.Fatalf("obs_transient_violation = %g, want %g", got, wantViol)
	}
	tr, err := queuing.NewTransient(5, 0.4, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	wantMix, err := tr.MixingTime(0.01, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := gauge(t, reg, "obs_transient_mixing_steps"); got != float64(wantMix) {
		t.Fatalf("obs_transient_mixing_steps = %g, want %d", got, wantMix)
	}
	if cache.Solves() == 0 {
		t.Fatal("probe did not consult its forecast cache")
	}

	// A repeat of the same interval shape must hit the cache, not re-solve.
	solves, hits := cache.Solves(), cache.Hits()
	p.Emit(telemetry.StepEvent{Interval: 2, VMs: 10, OnVMs: 5, OffOn: 2, OnOff: 2, PMsInUse: 2})
	if cache.Solves() != solves || cache.Hits() != hits+1 {
		t.Fatalf("steady-state interval did not hit the cache (solves %d → %d, hits %d → %d)",
			solves, cache.Solves(), hits, cache.Hits())
	}
}

// TestProbesForecastHelpRegistered pins the gauge-naming contract: the new
// family appears in the registry with help text, NaN-initialised.
func TestProbesForecastHelpRegistered(t *testing.T) {
	_, reg := newTestProbes(ProbeOptions{})
	snap := reg.Snapshot()
	for _, name := range []string{"obs_transient_violation", "obs_transient_mixing_steps"} {
		v, ok := snap.Gauges[name]
		if !ok {
			t.Fatalf("gauge %s not registered", name)
		}
		if !math.IsNaN(v) {
			t.Fatalf("gauge %s initialised to %g, want NaN", name, v)
		}
		if snap.Help[name] == "" {
			t.Fatalf("gauge %s has no help text", name)
		}
	}
}

// TestQuantizeProb pins the cache-key quantization: 1e-3 grid in the bulk,
// three significant digits below it, exact at the boundaries.
func TestQuantizeProb(t *testing.T) {
	for _, tt := range []struct{ in, want float64 }{
		{0, 0}, {1, 1}, {1.5, 1}, {-0.2, 0},
		{0.5, 0.5}, {0.1234, 0.123}, {0.9996, 1},
		{0.0004567, 0.000457}, {3.21e-7, 3.21e-7},
	} {
		if got := quantizeProb(tt.in); math.Abs(got-tt.want) > tt.want*1e-12 {
			t.Errorf("quantizeProb(%g) = %g, want %g", tt.in, got, tt.want)
		}
	}
}
