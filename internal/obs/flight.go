package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Dump triggers, recorded in Dump.Trigger.
const (
	TriggerHTTP      = "http"              // GET /debug/flight
	TriggerFinal     = "final"             // plane Close (end of run)
	TriggerManual    = "manual"            // explicit Snapshot call
	TriggerPMCrash   = "fault:pm_crash"    // FaultEvent pm_crash observed
	TriggerRollback  = "fault:rollback"    // reconsolidation plan rolled back
	TriggerStorm     = "storm:no_capacity" // ErrNoCapacity rejections over threshold
	TriggerShedStorm = "storm:shed"        // admission-policy sheds over threshold
	TriggerSkew      = "storm:skew"        // shard headroom skew breached the rebalance band
)

// Dump is one flight-recorder snapshot: the trigger, capture metadata, and
// the buffered events oldest-first. Each entry of Events is a raw JSONL
// envelope line ({seq, t_unix_ns, kind, event}) identical to what a full
// -trace run writes, so existing trace tooling parses dumps unchanged; use
// ParseDump to get typed records back.
type Dump struct {
	Trigger        string            `json:"trigger"`
	CapturedUnixNs int64             `json:"captured_unix_ns"`
	Cap            int               `json:"cap"`
	TotalEvents    uint64            `json:"total_events"`
	DroppedEvents  uint64            `json:"dropped_events"`
	Events         []json.RawMessage `json:"events"`
}

// RecorderOptions configures a FlightRecorder. The zero value is usable.
type RecorderOptions struct {
	// Cap is the ring capacity in events; default 4096.
	Cap int
	// OnDump receives automatic dumps (fault / rollback / rejection-storm
	// triggered) and the final dump the plane takes on Close. Nil disables
	// automatic dumping; explicit Snapshot and the HTTP handler still work.
	// OnDump is called outside the recorder lock but serially enough in
	// practice (auto dumps are cooldown-limited); it must not call back
	// into the recorder's Emit.
	OnDump func(Dump)
	// StormThreshold is the number of capacity rejections (overflow-reason
	// placement events plus NoteRejections tallies) between dumps that
	// triggers a storm dump. Default 256; negative disables storm dumps.
	StormThreshold int
	// Cooldown is the minimum number of emitted events between two
	// automatic dumps, suppressing dump storms when faults cluster.
	// Default Cap/2.
	Cooldown int
	// Clock overrides the wall clock (tests); nil means time.Now.
	Clock func() time.Time
}

type flightSlot struct {
	seq  uint64
	wall int64
	ev   telemetry.Event
}

// FlightRecorder is a fixed-capacity ring buffer of recent trace events and
// a telemetry.Tracer: wire it (alone or in a telemetry.Multi fan-out) as a
// run's tracer and the last Cap events are always available for post-mortem
// without the cost or volume of full JSONL tracing. Dumps are taken
// automatically on fault events and rejection storms, on demand via
// Snapshot, and over HTTP via Handler.
type FlightRecorder struct {
	mu sync.Mutex

	cap      int
	onDump   func(Dump)
	stormThr int
	cooldown int
	clock    func() time.Time
	buf      []flightSlot
	next     int    // slot receiving the next event
	filled   int    // live slots, ≤ cap
	seq      uint64 // total events ever emitted
	rejects  int    // capacity rejections since the last dump
	sheds    int    // admission-policy sheds since the last dump
	dumps    uint64 // dumps taken (any trigger)
	lastAuto uint64 // seq at the last automatic dump
	haveAuto bool
}

// NewFlightRecorder returns a recorder with the given options.
func NewFlightRecorder(o RecorderOptions) *FlightRecorder {
	if o.Cap <= 0 {
		o.Cap = 4096
	}
	if o.StormThreshold == 0 {
		o.StormThreshold = 256
	}
	if o.Cooldown <= 0 {
		o.Cooldown = o.Cap / 2
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return &FlightRecorder{
		cap:      o.Cap,
		onDump:   o.OnDump,
		stormThr: o.StormThreshold,
		cooldown: o.Cooldown,
		clock:    o.Clock,
		buf:      make([]flightSlot, o.Cap),
	}
}

// Enabled returns true.
func (f *FlightRecorder) Enabled() bool { return true }

// Emit appends the event to the ring, evicting the oldest when full, and
// fires an automatic dump when the event is a dump trigger (PM crash,
// rollback, or the rejection count crossing the storm threshold).
func (f *FlightRecorder) Emit(e telemetry.Event) {
	f.mu.Lock()
	f.seq++
	f.buf[f.next] = flightSlot{seq: f.seq, wall: f.clock().UnixNano(), ev: e}
	f.next = (f.next + 1) % f.cap
	if f.filled < f.cap {
		f.filled++
	}

	trigger := ""
	switch ev := e.(type) {
	case telemetry.FaultEvent:
		if ev.Type == telemetry.FaultPMCrash {
			trigger = TriggerPMCrash
		}
	case telemetry.RollbackEvent:
		trigger = TriggerRollback
	case telemetry.PlacementEvent:
		if !ev.Accepted && ev.Reason == telemetry.ReasonOverflow {
			f.rejects++
			if f.stormThr > 0 && f.rejects >= f.stormThr {
				trigger = TriggerStorm
			}
		}
	}
	f.fireLocked(trigger)
}

// NoteRejections adds out-of-band capacity rejections to the storm counter —
// the placesvc path, whose admission tests do not flow through the trace
// stream — and dumps when the threshold is crossed.
func (f *FlightRecorder) NoteRejections(n int) {
	if n <= 0 {
		return
	}
	f.mu.Lock()
	f.rejects += n
	trigger := ""
	if f.stormThr > 0 && f.rejects >= f.stormThr {
		trigger = TriggerStorm
	}
	f.fireLocked(trigger)
}

// NoteSheds adds admission-policy sheds to the shed-storm counter — the
// admission layer sits ahead of the committer and emits no trace events — and
// dumps with the storm:shed trigger when the threshold is crossed, mirroring
// NoteRejections / storm:no_capacity. Sheds and capacity rejections count
// separately: a shed storm means the policy is refusing work, a rejection
// storm means Eq. (17) is.
func (f *FlightRecorder) NoteSheds(n int) {
	if n <= 0 {
		return
	}
	f.mu.Lock()
	f.sheds += n
	trigger := ""
	if f.stormThr > 0 && f.sheds >= f.stormThr {
		trigger = TriggerShedStorm
	}
	f.fireLocked(trigger)
}

// NoteSkew records that the shardsvc rebalancer observed inter-shard
// headroom skew beyond its hysteresis band and dumps with the storm:skew
// trigger. Unlike rejections and sheds there is no accumulation threshold —
// the rebalancer already debounces (it fires once per skewed round), so each
// note is itself storm evidence; the recorder's cooldown still rate-limits
// the dumps.
func (f *FlightRecorder) NoteSkew() {
	f.mu.Lock()
	f.fireLocked(TriggerSkew)
}

// fireLocked takes an automatic dump for trigger (when set, allowed by the
// cooldown, and a sink is attached), releasing the lock before invoking the
// sink. It always releases f.mu.
func (f *FlightRecorder) fireLocked(trigger string) {
	if trigger == "" || f.onDump == nil || !f.autoAllowedLocked() {
		f.mu.Unlock()
		return
	}
	d := f.dumpLocked(trigger)
	f.lastAuto = f.seq
	f.haveAuto = true
	sink := f.onDump
	f.mu.Unlock()
	sink(d)
}

// autoAllowedLocked reports whether enough events have passed since the last
// automatic dump.
func (f *FlightRecorder) autoAllowedLocked() bool {
	return !f.haveAuto || f.seq-f.lastAuto >= uint64(f.cooldown)
}

// Snapshot captures the current ring contents as a Dump without disturbing
// the buffer. The rejection storm counter resets (the dump recorded the
// storm).
func (f *FlightRecorder) Snapshot(trigger string) Dump {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumpLocked(trigger)
}

// dumpLocked builds a Dump oldest-first. Callers hold the lock.
func (f *FlightRecorder) dumpLocked(trigger string) Dump {
	d := Dump{
		Trigger:        trigger,
		CapturedUnixNs: f.clock().UnixNano(),
		Cap:            f.cap,
		TotalEvents:    f.seq,
		DroppedEvents:  f.seq - uint64(f.filled),
		Events:         make([]json.RawMessage, 0, f.filled),
	}
	for i := 0; i < f.filled; i++ {
		slot := f.buf[(f.next-f.filled+i+f.cap)%f.cap]
		line, err := telemetry.EncodeLine(slot.seq, time.Unix(0, slot.wall), slot.ev)
		if err != nil {
			continue // unmarshalable event; drop rather than poison the dump
		}
		d.Events = append(d.Events, json.RawMessage(line))
	}
	f.rejects = 0
	f.sheds = 0
	f.dumps++
	return d
}

// Stats is a point-in-time view of recorder activity, for gauge export.
type Stats struct {
	Total   uint64 // events ever emitted
	Dropped uint64 // events evicted from the ring
	Dumps   uint64 // dumps taken, any trigger
}

// Stats returns activity counters.
func (f *FlightRecorder) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Stats{
		Total:   f.seq,
		Dropped: f.seq - uint64(f.filled),
		Dumps:   f.dumps,
	}
}

// Handler serves the ring as a JSON Dump on GET — mount it at /debug/flight.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		d := f.Snapshot(TriggerHTTP)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(d)
	})
}

// WriteLine appends the dump as one JSON line — the -flight file format: one
// dump object per line, in capture order.
func (d Dump) WriteLine(w io.Writer) error {
	line, err := json.Marshal(d)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	_, err = w.Write(line)
	return err
}

// ParseDump decodes a Dump (one JSON object, as served by the HTTP handler
// or one line of a -flight file) and its events back into typed records.
func ParseDump(data []byte) (Dump, []telemetry.Record, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return Dump{}, nil, fmt.Errorf("obs: bad flight dump: %w", err)
	}
	recs := make([]telemetry.Record, 0, len(d.Events))
	for i, line := range d.Events {
		rec, err := telemetry.DecodeLine(line)
		if err != nil {
			return d, recs, fmt.Errorf("obs: flight dump event %d: %w", i, err)
		}
		recs = append(recs, rec)
	}
	return d, recs, nil
}
