package obs

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/markov"
	"repro/internal/telemetry"
)

func newTestProbes(opt ProbeOptions) (*Probes, *telemetry.Registry) {
	reg := telemetry.NewRegistry()
	return NewProbes(reg, opt), reg
}

func gauge(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	v, ok := reg.Snapshot().Gauges[name]
	if !ok {
		t.Fatalf("gauge %s not registered", name)
	}
	return v
}

// TestProbesIDCMatchesOffline pins the streaming IDC to the offline
// reference: a single-VM fleet's ON indicator fed through StepEvents must
// reproduce markov.IndexOfDispersion over the same trace and window.
func TestProbesIDCMatchesOffline(t *testing.T) {
	const window, blocks = 10, 30
	chain, err := markov.NewOnOff(0.3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	trace := chain.Trace(markov.Off, window*blocks, rand.New(rand.NewSource(7)))

	want, err := markov.IndexOfDispersion(trace, window)
	if err != nil {
		t.Fatal(err)
	}

	p, reg := newTestProbes(ProbeOptions{IDCBlock: window, IDCBlocks: blocks})
	for i, st := range trace {
		on := 0
		if st == markov.On {
			on = 1
		}
		p.Emit(telemetry.StepEvent{Interval: i, VMs: 1, OnVMs: on, PMsInUse: 1})
	}
	got := gauge(t, reg, "obs_idc")
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("streaming IDC = %g, offline = %g", got, want)
	}
}

func TestProbesIDCUndefinedUntilTwoBlocks(t *testing.T) {
	p, reg := newTestProbes(ProbeOptions{IDCBlock: 5})
	for i := 0; i < 9; i++ { // one full block plus a partial one
		p.Emit(telemetry.StepEvent{Interval: i, VMs: 2, OnVMs: 1})
	}
	if v := gauge(t, reg, "obs_idc"); !math.IsNaN(v) {
		t.Fatalf("IDC after one block = %g, want NaN", v)
	}
}

// TestProbesTransitionDrift checks the windowed MLE against hand-counted
// transitions: the estimator divides observed switches by the occupancy of
// the source state in the previous interval.
func TestProbesTransitionDrift(t *testing.T) {
	p, reg := newTestProbes(ProbeOptions{DriftWindow: 100})
	// Interval 0: 10 VMs, 4 ON. Interval 1: 3 OFF→ON, 1 ON→OFF.
	p.Emit(telemetry.StepEvent{Interval: 0, VMs: 10, OnVMs: 4})
	p.Emit(telemetry.StepEvent{Interval: 1, VMs: 10, OnVMs: 6, OffOn: 3, OnOff: 1})
	if got, want := gauge(t, reg, "obs_p_on"), 3.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("p_on = %g, want %g", got, want)
	}
	if got, want := gauge(t, reg, "obs_p_off"), 1.0/4.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("p_off = %g, want %g", got, want)
	}
	if got, want := gauge(t, reg, "obs_on_fraction"), 0.6; math.Abs(got-want) > 1e-12 {
		t.Fatalf("on_fraction = %g, want %g", got, want)
	}
}

// TestProbesDriftMatchesEstimateOnOff feeds a sampled single-VM chain and
// compares the windowed MLE to markov.EstimateOnOff over the same steps.
func TestProbesDriftMatchesEstimateOnOff(t *testing.T) {
	const steps = 400
	chain, err := markov.NewOnOff(0.25, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	trace := chain.Trace(markov.Off, steps, rand.New(rand.NewSource(11)))
	est, err := markov.EstimateOnOff(trace)
	if err != nil {
		t.Fatal(err)
	}

	p, reg := newTestProbes(ProbeOptions{DriftWindow: steps}) // window covers it all
	for i, st := range trace {
		ev := telemetry.StepEvent{Interval: i, VMs: 1}
		if st == markov.On {
			ev.OnVMs = 1
		}
		if i > 0 {
			if trace[i-1] == markov.Off && st == markov.On {
				ev.OffOn = 1
			}
			if trace[i-1] == markov.On && st == markov.Off {
				ev.OnOff = 1
			}
		}
		p.Emit(ev)
	}
	if got := gauge(t, reg, "obs_p_on"); math.Abs(got-est.POn) > 1e-12 {
		t.Fatalf("windowed p_on = %g, EstimateOnOff = %g", got, est.POn)
	}
	if got := gauge(t, reg, "obs_p_off"); math.Abs(got-est.POff) > 1e-12 {
		t.Fatalf("windowed p_off = %g, EstimateOnOff = %g", got, est.POff)
	}
}

func TestProbesInterarrivalCV(t *testing.T) {
	p, reg := newTestProbes(ProbeOptions{CVWindow: 64})
	base := time.Unix(1_700_000_000, 0)

	// Constant gaps: CV → 0.
	for i := 0; i < 10; i++ {
		p.ObserveArrival(base.Add(time.Duration(i) * time.Millisecond))
	}
	if v := gauge(t, reg, "obs_interarrival_cv"); math.Abs(v) > 1e-9 {
		t.Fatalf("CV of constant gaps = %g, want 0", v)
	}

	// A bursty train (gap pattern 0,0,0,9ms repeating) is burstier than its
	// mean: CV well above 1.
	p2, reg2 := newTestProbes(ProbeOptions{CVWindow: 64})
	ts := base
	for i := 0; i < 40; i++ {
		if i%4 == 3 {
			ts = ts.Add(9 * time.Millisecond)
		}
		p2.ObserveArrival(ts)
	}
	if v := gauge(t, reg2, "obs_interarrival_cv"); v < 1 {
		t.Fatalf("CV of bursty train = %g, want > 1", v)
	}

	// Out-of-order timestamp clamps to zero gap, never negative stats.
	p.ObserveArrival(base.Add(-time.Second))
	if v := gauge(t, reg, "obs_interarrival_cv"); math.IsNaN(v) || v < 0 {
		t.Fatalf("CV after out-of-order arrival = %g", v)
	}
}

func TestProbesOverflowEWMA(t *testing.T) {
	p, reg := newTestProbes(ProbeOptions{EWMAAlpha: 0.5})
	p.Emit(telemetry.StepEvent{Interval: 0, VMs: 1, PMsInUse: 10, Violations: 2}) // rate 0.2
	if got := gauge(t, reg, "obs_overflow_rate_ewma"); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("EWMA seed = %g, want 0.2", got)
	}
	p.Emit(telemetry.StepEvent{Interval: 1, VMs: 1, PMsInUse: 10, Violations: 0})
	if got := gauge(t, reg, "obs_overflow_rate_ewma"); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("EWMA after zero interval = %g, want 0.1", got)
	}
}

func TestProbesIgnoreOtherEvents(t *testing.T) {
	p, reg := newTestProbes(ProbeOptions{})
	p.Emit(telemetry.PlacementEvent{VMID: 1, Accepted: true})
	p.Emit(telemetry.FaultEvent{Type: telemetry.FaultPMCrash})
	if v := gauge(t, reg, "obs_on_fraction"); !math.IsNaN(v) {
		t.Fatalf("on_fraction moved on non-step events: %g", v)
	}
}
