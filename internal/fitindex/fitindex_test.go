package fitindex

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveFirstAtLeast is the linear-scan oracle for MaxTree.FirstAtLeast.
func naiveFirstAtLeast(scores []float64, from int, need float64) int {
	for i := from; i < len(scores); i++ {
		if i >= 0 && scores[i] >= need {
			return i
		}
	}
	return -1
}

func TestMaxTreeAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 7, 8, 100, 257} {
		tree := NewMaxTree(n)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = NegInf
		}
		for op := 0; op < 2000; op++ {
			if rng.Float64() < 0.5 {
				i := rng.Intn(n)
				v := rng.Float64() * 100
				if rng.Float64() < 0.1 {
					v = NegInf
				}
				scores[i] = v
				tree.Set(i, v)
			} else {
				from := rng.Intn(n+2) - 1
				need := rng.Float64() * 100
				got := tree.FirstAtLeast(from, need)
				want := naiveFirstAtLeast(scores, max(from, 0), need)
				if got != want {
					t.Fatalf("n=%d FirstAtLeast(%d, %v) = %d, oracle %d", n, from, need, got, want)
				}
			}
		}
	}
}

func TestMaxTreeBasics(t *testing.T) {
	tree := NewMaxTree(4)
	if tree.Len() != 4 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if got := tree.FirstAtLeast(0, 0); got != -1 {
		t.Fatalf("empty tree FirstAtLeast = %d", got)
	}
	tree.Set(2, 5)
	tree.Set(3, 9)
	if got := tree.FirstAtLeast(0, 4); got != 2 {
		t.Fatalf("FirstAtLeast(0,4) = %d, want 2", got)
	}
	if got := tree.FirstAtLeast(3, 4); got != 3 {
		t.Fatalf("FirstAtLeast(3,4) = %d, want 3", got)
	}
	if got := tree.FirstAtLeast(0, 10); got != -1 {
		t.Fatalf("FirstAtLeast(0,10) = %d, want -1", got)
	}
	if got := tree.Get(3); got != 9 {
		t.Fatalf("Get(3) = %v", got)
	}
}

func TestMinTreeAscendOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 64, 130} {
		tree := NewMinTree(n)
		vals := make([]float64, n)
		for i := range vals {
			if rng.Float64() < 0.2 {
				vals[i] = PosInf
			} else {
				// Coarse values force ties, exercising the index tiebreak.
				vals[i] = float64(rng.Intn(5))
			}
			tree.Set(i, vals[i])
		}
		type pair struct {
			v float64
			i int
		}
		var want []pair
		for i, v := range vals {
			if v != PosInf {
				want = append(want, pair{v, i})
			}
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].v != want[b].v {
				return want[a].v < want[b].v
			}
			return want[a].i < want[b].i
		})
		var got []pair
		tree.Ascend(nil, func(pos int, val float64) bool {
			got = append(got, pair{val, pos})
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("n=%d visited %d positions, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d position %d: got %+v, want %+v", n, i, got[i], want[i])
			}
		}
	}
}

// Fill must leave both trees in exactly the state an equivalent Set loop
// would: same answers to every query, regardless of the tree's prior content.
func TestFillMatchesSetLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 7, 8, 100, 257} {
		scores := make([]float64, n)
		for i := range scores {
			if rng.Float64() < 0.15 {
				scores[i] = NegInf
			} else {
				scores[i] = rng.Float64() * 100
			}
		}

		// MaxTree: Fill over a dirtied tree vs. per-position Set.
		filled := NewMaxTree(n)
		for i := 0; i < n; i++ {
			filled.Set(i, rng.Float64()*1000) // stale content Fill must erase
		}
		filled.Fill(scores)
		setTree := NewMaxTree(n)
		for i, v := range scores {
			setTree.Set(i, v)
		}
		for trial := 0; trial < 200; trial++ {
			from := rng.Intn(n+2) - 1
			need := rng.Float64() * 100
			if got, want := filled.FirstAtLeast(from, need), setTree.FirstAtLeast(from, need); got != want {
				t.Fatalf("n=%d MaxTree FirstAtLeast(%d, %v): Fill %d, Set loop %d", n, from, need, got, want)
			}
		}
		for i := 0; i < n; i++ {
			if filled.Get(i) != setTree.Get(i) {
				t.Fatalf("n=%d MaxTree Get(%d): Fill %v, Set loop %v", n, i, filled.Get(i), setTree.Get(i))
			}
		}

		// MinTree: same comparison on the Ascend order.
		vals := make([]float64, n)
		for i := range vals {
			if rng.Float64() < 0.2 {
				vals[i] = PosInf
			} else {
				vals[i] = float64(rng.Intn(5)) // ties exercise the index tiebreak
			}
		}
		filledMin := NewMinTree(n)
		for i := 0; i < n; i++ {
			filledMin.Set(i, rng.Float64()*1000)
		}
		filledMin.Fill(vals)
		setMin := NewMinTree(n)
		for i, v := range vals {
			setMin.Set(i, v)
		}
		type pair struct {
			v float64
			i int
		}
		var got, want []pair
		filledMin.Ascend(nil, func(pos int, val float64) bool {
			got = append(got, pair{val, pos})
			return true
		})
		setMin.Ascend(nil, func(pos int, val float64) bool {
			want = append(want, pair{val, pos})
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("n=%d MinTree Ascend visited %d, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d MinTree Ascend[%d]: Fill %+v, Set loop %+v", n, i, got[i], want[i])
			}
		}
	}
}

func TestMinTreeAscendEarlyStop(t *testing.T) {
	tree := NewMinTree(8)
	for i := 0; i < 8; i++ {
		tree.Set(i, float64(8-i))
	}
	visited := 0
	scratch := tree.Ascend(nil, func(pos int, val float64) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("visited %d, want 3", visited)
	}
	// The returned scratch is reusable for the next walk.
	visited = 0
	tree.Ascend(scratch, func(pos int, val float64) bool {
		visited++
		return true
	})
	if visited != 8 {
		t.Fatalf("reused-scratch walk visited %d, want 8", visited)
	}
}

func TestMinTreeAddTracksDeltas(t *testing.T) {
	tree := NewMinTree(3)
	tree.Set(0, 1)
	tree.Set(1, 2)
	tree.Set(2, 3)
	tree.Add(1, -1.5) // position 1 now 0.5: new minimum
	first := -1
	tree.Ascend(nil, func(pos int, _ float64) bool {
		first = pos
		return false
	})
	if first != 1 {
		t.Fatalf("min after Add = position %d, want 1", first)
	}
	if got := tree.Get(1); got != 0.5 {
		t.Fatalf("Get(1) = %v, want 0.5", got)
	}
}
