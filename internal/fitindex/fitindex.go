// Package fitindex provides the succinct index structures behind the
// fleet-scale placement and scheduling paths: a segment tree over per-PM
// scores answering "leftmost PM whose score is at least `need`" (the
// first-fit query of bin-packing FFD) in O(log m), and a min-tree answering
// "visit PMs in ascending (value, index) order" (the least-loaded target
// query of the dynamic scheduler) in O(log m) per visited PM.
//
// Both trees are plain float64 point-update structures with no allocation on
// the query path; callers own the mapping between tree positions and PM
// identities.
package fitindex

import "math"

// NegInf marks a position that can never satisfy a query — a PM that is at
// its VM cap, crashed, or otherwise excluded.
var NegInf = math.Inf(-1)

// MaxTree is a segment tree over a fixed-size array of scores supporting
// FirstAtLeast — the indexed first-fit primitive. Scores are arbitrary
// float64s; positions excluded from matching hold NegInf.
type MaxTree struct {
	n    int       // number of leaves (logical size)
	size int       // power-of-two leaf span
	max  []float64 // 1-based heap layout; max[1] is the root
}

// NewMaxTree builds a tree over n positions, all initialised to NegInf.
func NewMaxTree(n int) *MaxTree {
	size := 1
	for size < n {
		size <<= 1
	}
	if n == 0 {
		size = 1
	}
	t := &MaxTree{n: n, size: size, max: make([]float64, 2*size)}
	for i := range t.max {
		t.max[i] = NegInf
	}
	return t
}

// Len returns the number of positions.
func (t *MaxTree) Len() int { return t.n }

// Set updates the score at position i.
func (t *MaxTree) Set(i int, score float64) {
	p := t.size + i
	t.max[p] = score
	for p >>= 1; p >= 1; p >>= 1 {
		l, r := t.max[2*p], t.max[2*p+1]
		if l >= r {
			t.max[p] = l
		} else {
			t.max[p] = r
		}
	}
}

// Get returns the score at position i.
func (t *MaxTree) Get(i int) float64 { return t.max[t.size+i] }

// Fill replaces every position's score in one pass: the leaves are loaded
// from scores (positions past len(scores) become NegInf) and the interior is
// rebuilt bottom-up, costing O(m) instead of the O(m log m) of m point Sets.
// This is the wholesale-rebuild primitive behind parallel rescoring: workers
// compute score slices independently, and one sequential Fill merges them —
// the tree state depends only on the scores, never on the worker count.
func (t *MaxTree) Fill(scores []float64) {
	for i := 0; i < t.size; i++ {
		if i < len(scores) && i < t.n {
			t.max[t.size+i] = scores[i]
		} else {
			t.max[t.size+i] = NegInf
		}
	}
	for p := t.size - 1; p >= 1; p-- {
		l, r := t.max[2*p], t.max[2*p+1]
		if l >= r {
			t.max[p] = l
		} else {
			t.max[p] = r
		}
	}
}

// FirstAtLeast returns the smallest position p ≥ from with score ≥ need, or
// -1 when no such position exists. This is the first-fit query: with scores
// holding per-PM residual headroom, it finds the lowest-indexed PM that can
// admit a demand of `need` without scanning the pool.
func (t *MaxTree) FirstAtLeast(from int, need float64) int {
	if from < 0 {
		from = 0
	}
	if from >= t.n || t.max[1] < need {
		return -1
	}
	return t.search(1, 0, t.size-1, from, need)
}

// search descends to the leftmost leaf ≥ from whose value ≥ need within the
// node covering [lo, hi].
func (t *MaxTree) search(node, lo, hi, from int, need float64) int {
	if hi < from || t.max[node] < need {
		return -1
	}
	if lo == hi {
		if lo >= t.n {
			return -1
		}
		return lo
	}
	mid := (lo + hi) / 2
	if p := t.search(2*node, lo, mid, from, need); p >= 0 {
		return p
	}
	return t.search(2*node+1, mid+1, hi, from, need)
}

// MinTree is a segment tree over a fixed-size array of values supporting
// in-order traversal of positions by ascending (value, index) — the
// least-loaded-first iteration of the migration target scan. Positions
// excluded from iteration hold +Inf.
type MinTree struct {
	n    int
	size int
	min  []float64 // min value per node
	arg  []int32   // smallest position achieving it (ties by position)
}

// PosInf marks a position excluded from MinTree iteration.
var PosInf = math.Inf(1)

// NewMinTree builds a tree over n positions, all initialised to PosInf.
func NewMinTree(n int) *MinTree {
	size := 1
	for size < n {
		size <<= 1
	}
	if n == 0 {
		size = 1
	}
	t := &MinTree{n: n, size: size, min: make([]float64, 2*size), arg: make([]int32, 2*size)}
	for i := range t.min {
		t.min[i] = PosInf
	}
	for i := 0; i < size; i++ {
		t.arg[size+i] = int32(i)
	}
	for p := size - 1; p >= 1; p-- {
		t.pull(p)
	}
	return t
}

// Len returns the number of positions.
func (t *MinTree) Len() int { return t.n }

func (t *MinTree) pull(p int) {
	l, r := 2*p, 2*p+1
	// Ties break toward the left child, i.e. the smaller position.
	if t.min[l] <= t.min[r] {
		t.min[p], t.arg[p] = t.min[l], t.arg[l]
	} else {
		t.min[p], t.arg[p] = t.min[r], t.arg[r]
	}
}

// Set updates the value at position i.
func (t *MinTree) Set(i int, v float64) {
	p := t.size + i
	t.min[p] = v
	for p >>= 1; p >= 1; p >>= 1 {
		t.pull(p)
	}
}

// Add applies a delta to the value at position i (a load accumulator update).
// The position must currently hold a finite value.
func (t *MinTree) Add(i int, delta float64) { t.Set(i, t.min[t.size+i]+delta) }

// Get returns the value at position i.
func (t *MinTree) Get(i int) float64 { return t.min[t.size+i] }

// Fill replaces every position's value in one bottom-up pass — the MinTree
// counterpart of MaxTree.Fill. Positions past len(values) become PosInf.
func (t *MinTree) Fill(values []float64) {
	for i := 0; i < t.size; i++ {
		p := t.size + i
		if i < len(values) && i < t.n {
			t.min[p] = values[i]
		} else {
			t.min[p] = PosInf
		}
		t.arg[p] = int32(i)
	}
	for p := t.size - 1; p >= 1; p-- {
		t.pull(p)
	}
}

// heapNode is one frontier entry of the Ascend walk: a tree node together
// with its subtree minimum.
type heapNode struct {
	val  float64
	pos  int32 // position achieving val (tie-broken to the smallest)
	node int32 // tree node index
}

// AscendScratch is the reusable frontier buffer of MinTree.Ascend.
type AscendScratch []heapNode

// Ascend visits positions in ascending (value, index) order, calling visit
// for each until it returns false or every finite position has been seen.
// scratch, if non-nil, supplies the frontier buffer (letting hot callers
// reuse one allocation); pass nil for a fresh buffer.
//
// The walk expands tree nodes lazily through a binary heap, so visiting the
// first k positions costs O(k log m) — the dynamic scheduler typically stops
// at the first PM that admits the VM.
func (t *MinTree) Ascend(scratch AscendScratch, visit func(pos int, val float64) bool) AscendScratch {
	h := scratch[:0]
	if t.min[1] != PosInf {
		h = append(h, heapNode{val: t.min[1], pos: t.arg[1], node: 1})
	}
	for len(h) > 0 {
		top := h[0]
		// Pop.
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		siftDown(h)
		if int(top.node) >= t.size {
			// Leaf: visit it.
			if top.val == PosInf {
				continue
			}
			if !visit(int(top.pos), top.val) {
				return h
			}
			continue
		}
		// Internal node: expand both children.
		for _, c := range [2]int32{2 * top.node, 2*top.node + 1} {
			if t.min[c] == PosInf {
				continue
			}
			h = append(h, heapNode{val: t.min[c], pos: t.arg[c], node: c})
			siftUp(h)
		}
	}
	return h
}

// less orders frontier entries by (value, position) — the iteration order.
func (a heapNode) less(b heapNode) bool {
	if a.val != b.val {
		return a.val < b.val
	}
	return a.pos < b.pos
}

func siftUp(h []heapNode) {
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []heapNode) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l].less(h[smallest]) {
			smallest = l
		}
		if r < len(h) && h[r].less(h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
