package benchfmt

import (
	"bufio"
	"strings"
	"testing"
)

// stream builds a minimal test2json stream; result lines are deliberately
// split across Output events the way test2json emits them.
const stream = `{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"run","Package":"repro","Test":"BenchmarkFig7MapCal"}
{"Action":"output","Package":"repro","Test":"BenchmarkFig7MapCal/k=64","Output":"BenchmarkFig7MapCal/k=64-8         \t"}
{"Action":"output","Package":"repro","Test":"BenchmarkFig7MapCal/k=64","Output":"      62\t  18983683 ns/op\t 1474006 B/op\t     266 allocs/op\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkMappingTable/d=16","Output":"BenchmarkMappingTable/d=16-8       \t     606\t   1987829 ns/op\n"}
{"Action":"output","Package":"repro","Output":"PASS\n"}
`

func TestParse(t *testing.T) {
	res, err := Parse(bufio.NewScanner(strings.NewReader(stream)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d results, want 2: %v", len(res), res)
	}
	mc, ok := res["BenchmarkFig7MapCal/k=64-8"]
	if !ok {
		t.Fatalf("BenchmarkFig7MapCal/k=64-8 missing (multi-proc runs key as Name-P): %v", res)
	}
	if mc.Name != "BenchmarkFig7MapCal/k=64" || mc.Procs != 8 {
		t.Errorf("(Name, Procs) = (%q, %d), want the suffix parsed off the name", mc.Name, mc.Procs)
	}
	if mc.Iters != 62 || mc.NsPerOp != 18983683 {
		t.Errorf("MapCal result = %+v", mc)
	}
	if !mc.HasMem || mc.BytesPerOp != 1474006 || mc.AllocsPerOp != 266 {
		t.Errorf("MapCal -benchmem counters = %+v", mc)
	}
	mt := res["BenchmarkMappingTable/d=16-8"]
	if mt.NsPerOp != 1987829 {
		t.Errorf("MappingTable result = %+v", mt)
	}
	if mt.HasMem {
		t.Errorf("MappingTable line has no -benchmem counters but HasMem is set: %+v", mt)
	}
}

// countStream repeats one benchmark name the way `-count 3` does; Parse must
// keep the fastest run, not the last.
const countStream = `{"Action":"output","Package":"repro","Output":"BenchmarkScaleStep/n=10-1 \t 100\t 900 ns/op\t 16 B/op\t 2 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkScaleStep/n=10-1 \t 100\t 700 ns/op\t 16 B/op\t 2 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkScaleStep/n=10-1 \t 100\t 800 ns/op\t 16 B/op\t 2 allocs/op\n"}
`

func TestParseKeepsMinAcrossCountRuns(t *testing.T) {
	res, err := Parse(bufio.NewScanner(strings.NewReader(countStream)))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := res["BenchmarkScaleStep/n=10"]
	if !ok {
		t.Fatalf("result missing: %v", res)
	}
	if r.NsPerOp != 700 {
		t.Errorf("NsPerOp = %v, want the minimum 700 across the -count runs", r.NsPerOp)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(bufio.NewScanner(strings.NewReader("not json\n"))); err == nil {
		t.Fatal("accepted a non-JSON line")
	}
}

func TestParseFileBaseline(t *testing.T) {
	res, err := ParseFile("../../BENCH_baseline.json")
	if err != nil {
		t.Skipf("baseline snapshot unavailable: %v", err)
	}
	if _, ok := res["BenchmarkFig7MapCal/k=64"]; !ok {
		t.Errorf("baseline snapshot lacks BenchmarkFig7MapCal/k=64")
	}
	if _, ok := res["BenchmarkMappingTable/d=64"]; !ok {
		t.Errorf("baseline snapshot lacks BenchmarkMappingTable/d=64")
	}
}

// matrixStream is a -cpu 1,4,8 run: one name at three GOMAXPROCS levels.
// The testing package omits the suffix at GOMAXPROCS = 1, so the single-proc
// level keys as the bare name — the same key every pre-matrix snapshot used.
const matrixStream = `{"Action":"output","Package":"repro","Output":"BenchmarkServeAdmit/m=1000/clients=4 \t 100\t 900 ns/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkServeAdmit/m=1000/clients=4-4 \t 100\t 400 ns/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkServeAdmit/m=1000/clients=4-8 \t 100\t 300 ns/op\n"}
`

func TestParseProcsMatrix(t *testing.T) {
	res, err := Parse(bufio.NewScanner(strings.NewReader(matrixStream)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("parsed %d results, want 3 distinct procs levels: %v", len(res), res)
	}
	for key, procs, ns := "BenchmarkServeAdmit/m=1000/clients=4", 1, 900.0; ; {
		r, ok := res[key]
		if !ok {
			t.Fatalf("%s missing: %v", key, res)
		}
		if r.Procs != procs || r.NsPerOp != ns {
			t.Errorf("%s = %+v, want procs %d, %v ns/op", key, r, procs, ns)
		}
		if r.Name != "BenchmarkServeAdmit/m=1000/clients=4" {
			t.Errorf("%s Name = %q, want suffix-free name", key, r.Name)
		}
		if procs == 1 {
			key, procs, ns = key+"-4", 4, 400
		} else if procs == 4 {
			key, procs, ns = "BenchmarkServeAdmit/m=1000/clients=4-8", 8, 300
		} else {
			break
		}
	}
}

// loadgenStream carries loadgen's custom metrics; only rejected-frac is
// parsed, the admit quantiles stay ignored.
const loadgenStream = `{"Action":"output","Output":"BenchmarkLoadgen/m=50/clients=4 \t    2000\t      3100.5 ns/op\t      812345 p50-admit-ns\t     9912345 p99-admit-ns\t    0.042000 rejected-frac\n"}
{"Action":"output","Output":"BenchmarkLoadgen/m=100/clients=4 \t    2000\t      4100.5 ns/op\t      812345 p50-admit-ns\t     9912345 p99-admit-ns\n"}
`

func TestParseRejectedFrac(t *testing.T) {
	res, err := Parse(bufio.NewScanner(strings.NewReader(loadgenStream)))
	if err != nil {
		t.Fatal(err)
	}
	withFrac, ok := res["BenchmarkLoadgen/m=50/clients=4"]
	if !ok {
		t.Fatalf("loadgen result missing: %v", res)
	}
	if !withFrac.HasRejectedFrac || withFrac.RejectedFrac != 0.042 {
		t.Errorf("rejected-frac = (%v, %v), want (0.042, true)", withFrac.RejectedFrac, withFrac.HasRejectedFrac)
	}
	if withFrac.NsPerOp != 3100.5 {
		t.Errorf("ns/op = %v alongside custom metrics", withFrac.NsPerOp)
	}
	plain := res["BenchmarkLoadgen/m=100/clients=4"]
	if plain.HasRejectedFrac {
		t.Errorf("HasRejectedFrac set on a line without the metric: %+v", plain)
	}
}
