// Package benchfmt parses benchmark snapshots produced by
// `go test -bench . -json` (the test2json stream committed as
// BENCH_baseline.json, BENCH_pr2.json, and BENCH_pr4.json). The ns/op figure
// is always extracted; when the run used -benchmem, the B/op and allocs/op
// counters are captured too. Custom metrics are ignored.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurement.
type Result struct {
	Name    string  // full name including sub-benchmark path, without -P suffix
	Iters   int64   // iteration count of the measurement
	NsPerOp float64 // reported ns/op
	// BytesPerOp and AllocsPerOp hold the -benchmem counters; they are only
	// meaningful when HasMem is true (the snapshot was taken with -benchmem).
	BytesPerOp  float64
	AllocsPerOp float64
	HasMem      bool
}

// event is the subset of the test2json envelope we care about.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// resultLine matches a benchmark result line after output reassembly, e.g.
//
//	BenchmarkFig7MapCal/k=64-8   	      62	  18983683 ns/op	...
//
// The trailing -N GOMAXPROCS suffix is stripped from the reported name.
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// Parse reads a test2json stream and returns the benchmark results keyed by
// name. Benchmark result lines are split across multiple Output events by
// test2json, so the stream's Output payloads are reassembled into logical
// lines before matching.
func Parse(lines *bufio.Scanner) (map[string]Result, error) {
	var buf strings.Builder
	for lines.Scan() {
		raw := lines.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("benchfmt: bad test2json line: %w", err)
		}
		if ev.Action == "output" {
			buf.WriteString(ev.Output)
		}
	}
	if err := lines.Err(); err != nil {
		return nil, err
	}

	results := make(map[string]Result)
	for _, line := range strings.Split(buf.String(), "\n") {
		m := resultLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad ns/op in %q: %w", line, err)
		}
		r := Result{Name: m[1], Iters: iters, NsPerOp: ns}
		if m[5] != "" {
			b, err := strconv.ParseFloat(m[5], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad B/op in %q: %w", line, err)
			}
			a, err := strconv.ParseFloat(m[6], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad allocs/op in %q: %w", line, err)
			}
			r.BytesPerOp, r.AllocsPerOp, r.HasMem = b, a, true
		}
		// A name repeats when the snapshot was taken with -count N; keep
		// the fastest run. The minimum is the noise-robust statistic on a
		// shared box — scheduler interference only ever adds time.
		if prev, ok := results[m[1]]; !ok || r.NsPerOp < prev.NsPerOp {
			results[m[1]] = r
		}
	}
	return results, nil
}

// ParseFile parses a snapshot file.
func ParseFile(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	res, err := Parse(sc)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}
