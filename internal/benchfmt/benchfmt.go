// Package benchfmt parses benchmark snapshots produced by
// `go test -bench . -json` (the test2json stream committed as
// BENCH_baseline.json, BENCH_pr2.json, and BENCH_pr4.json). The ns/op figure
// is always extracted; when the run used -benchmem, the B/op and allocs/op
// counters are captured too. Of the custom metrics, only `rejected-frac`
// (loadgen's shed+rejected arrival fraction) is parsed — benchdiff gates on
// it; the rest are ignored.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurement.
type Result struct {
	Name    string  // full name including sub-benchmark path, without -P suffix
	Procs   int     // GOMAXPROCS of the run (the -P name suffix; 1 when absent)
	Iters   int64   // iteration count of the measurement
	NsPerOp float64 // reported ns/op
	// BytesPerOp and AllocsPerOp hold the -benchmem counters; they are only
	// meaningful when HasMem is true (the snapshot was taken with -benchmem).
	BytesPerOp  float64
	AllocsPerOp float64
	HasMem      bool
	// RejectedFrac is loadgen's `rejected-frac` custom metric — the fraction
	// of arrivals refused by admission policy (shed) or capacity (rejected).
	// Only meaningful when HasRejectedFrac is true.
	RejectedFrac    float64
	HasRejectedFrac bool
}

// Key is the map key a Result is stored under: the bare Name at Procs = 1
// (matching every snapshot taken before the GOMAXPROCS matrix existed — the
// testing package only appends the -P suffix when GOMAXPROCS ≠ 1) and
// Name-P otherwise, so one snapshot can hold a -cpu 1,4,8 matrix without the
// procs levels colliding, and diffs line up like-for-like per level.
func (r Result) Key() string {
	if r.Procs <= 1 {
		return r.Name
	}
	return fmt.Sprintf("%s-%d", r.Name, r.Procs)
}

// event is the subset of the test2json envelope we care about.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// resultLine matches a benchmark result line after output reassembly, e.g.
//
//	BenchmarkFig7MapCal/k=64-8   	      62	  18983683 ns/op	...
//
// The trailing -N GOMAXPROCS suffix is stripped from the reported name and
// parsed into Result.Procs.
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// rejectedFracMetric matches loadgen's shed-rate custom metric anywhere after
// the standard counters on a result line.
var rejectedFracMetric = regexp.MustCompile(`\s([0-9.]+(?:[eE][+-]?[0-9]+)?) rejected-frac\b`)

// Parse reads a test2json stream and returns the benchmark results keyed by
// Result.Key — the bare name for single-proc runs, name-P per GOMAXPROCS
// level in a -cpu matrix. Benchmark result lines are split across multiple
// Output events by test2json, so the stream's Output payloads are
// reassembled into logical lines before matching.
func Parse(lines *bufio.Scanner) (map[string]Result, error) {
	var buf strings.Builder
	for lines.Scan() {
		raw := lines.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("benchfmt: bad test2json line: %w", err)
		}
		if ev.Action == "output" {
			buf.WriteString(ev.Output)
		}
	}
	if err := lines.Err(); err != nil {
		return nil, err
	}

	results := make(map[string]Result)
	for _, line := range strings.Split(buf.String(), "\n") {
		m := resultLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad ns/op in %q: %w", line, err)
		}
		procs := 1
		if m[2] != "" {
			procs, err = strconv.Atoi(m[2][1:]) // drop the leading '-'
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad GOMAXPROCS suffix in %q: %w", line, err)
			}
		}
		r := Result{Name: m[1], Procs: procs, Iters: iters, NsPerOp: ns}
		if m[5] != "" {
			b, err := strconv.ParseFloat(m[5], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad B/op in %q: %w", line, err)
			}
			a, err := strconv.ParseFloat(m[6], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad allocs/op in %q: %w", line, err)
			}
			r.BytesPerOp, r.AllocsPerOp, r.HasMem = b, a, true
		}
		if fm := rejectedFracMetric.FindStringSubmatch(line); fm != nil {
			frac, err := strconv.ParseFloat(fm[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad rejected-frac in %q: %w", line, err)
			}
			r.RejectedFrac, r.HasRejectedFrac = frac, true
		}
		// A key repeats when the snapshot was taken with -count N; keep
		// the fastest run. The minimum is the noise-robust statistic on a
		// shared box — scheduler interference only ever adds time.
		if prev, ok := results[r.Key()]; !ok || r.NsPerOp < prev.NsPerOp {
			results[r.Key()] = r
		}
	}
	return results, nil
}

// ParseFile parses a snapshot file.
func ParseFile(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	res, err := Parse(sc)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}
