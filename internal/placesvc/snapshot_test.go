package placesvc

import (
	"math"
	"testing"

	"repro/internal/cloud"
)

// The snapshot headroom summary: Slots is PMs × MaxVMsPerPM, Headroom tracks
// placed VMs commit by commit, Occupancy is their ratio — all O(1) reads of
// the published stats block, never a placement materialisation.
func TestSnapshotHeadroom(t *testing.T) {
	svc := newServiceT(t, Config{PMs: mkPool(4, 100), MaxBatch: 1})
	wantSlots := 4 * paperStrategy().MaxVMsPerPM

	snap := svc.Snapshot()
	if got := snap.Slots(); got != wantSlots {
		t.Fatalf("Slots() = %d, want %d", got, wantSlots)
	}
	if got := snap.Headroom(); got != wantSlots {
		t.Errorf("empty-fleet Headroom() = %d, want %d", got, wantSlots)
	}
	if got := snap.Occupancy(); got != 0 {
		t.Errorf("empty-fleet Occupancy() = %v, want 0", got)
	}

	for i := 0; i < 5; i++ {
		if _, err := svc.Arrive(mkVM(i, 5, 3)); err != nil {
			t.Fatal(err)
		}
	}
	snap = svc.Snapshot()
	if got := snap.Headroom(); got != wantSlots-5 {
		t.Errorf("Headroom() = %d after 5 arrivals, want %d", got, wantSlots-5)
	}
	if got, want := snap.Occupancy(), 5.0/float64(wantSlots); got != want {
		t.Errorf("Occupancy() = %v, want %v", got, want)
	}

	if err := svc.Depart(2); err != nil {
		t.Fatal(err)
	}
	snap = svc.Snapshot()
	if got := snap.Headroom(); got != wantSlots-4 {
		t.Errorf("Headroom() = %d after a departure, want %d", got, wantSlots-4)
	}

	// Old snapshots keep their own headroom: immutability extends to the
	// summary fields.
	old := snap
	if _, err := svc.Arrive(mkVM(9, 5, 3)); err != nil {
		t.Fatal(err)
	}
	if got := old.Headroom(); got != wantSlots-4 {
		t.Errorf("old snapshot Headroom() drifted to %d, want %d", got, wantSlots-4)
	}
}

// A slotless service (empty PM pool) reports NaN occupancy — the "no
// reading" sentinel the admission OccupancyGate passes through.
func TestSnapshotOccupancyEmptyPool(t *testing.T) {
	svc := newServiceT(t, Config{PMs: []cloud.PM{}, MaxBatch: 1})
	snap := svc.Snapshot()
	if got := snap.Slots(); got != 0 {
		t.Fatalf("Slots() = %d for an empty pool, want 0", got)
	}
	if got := snap.Occupancy(); !math.IsNaN(got) {
		t.Errorf("Occupancy() = %v for an empty pool, want NaN", got)
	}
}
