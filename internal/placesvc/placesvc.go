// Package placesvc is the high-throughput admission service over the §IV-E
// online consolidation scheme: many concurrent callers submit VM arrivals and
// departures, a single committer goroutine drains them through a batched
// group-commit pipeline, and monitoring reads run lock-free against an
// atomically-swapped immutable snapshot.
//
// The pipeline shape follows the infinite-server packing view of the online
// problem (Stolyar): admission throughput — not the packing itself — is the
// bottleneck once a single placement costs O(log m), so requests are
// coalesced into batches of up to MaxBatch, each batch's arrivals are ordered
// with the Algorithm-2 cluster-and-sort, and every admission runs through the
// persistent segment-tree first-fit index of core.Online. Within one commit,
// departures apply first (they free capacity), arrivals second, table
// refreshes last (they observe the post-commit fleet). The per-PM halves of a
// commit — rescoring the PMs a departure phase touched and rebuilding the
// whole index after a refresh — fan out over Config.Workers goroutines with a
// deterministic merge; snapshots publish through a lock-free op ring (see
// ring.go) so monitoring reads never cost the commit path a clone.
//
// Determinism contract: placements depend only on the order in which requests
// commit. With MaxBatch = 1, or with a single client awaiting each response,
// commit order equals submission order and the service reproduces the
// sequential core.Online placement bit-identically (see
// TestServeEquivalence). Under concurrent clients the interleaving — and
// therefore the placement — is scheduling-dependent, but every committed
// state satisfies Eq. (17).
package placesvc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("placesvc: service closed")

// obsSampleEvery is the commit-level span-timing sample rate: one commit in
// this many gets its queue-wait / batch-apply / snapshot-publish spans timed
// into the obs windows. Keyed off the commit counter, so which commits are
// sampled is deterministic.
const obsSampleEvery = 8

// Config parameterises a Service.
type Config struct {
	// Strategy is the admission policy (Eq. 17 via its mapping table).
	// MaxVMsPerPM must be ≥ 1. Its Tables cache — the process-wide shared
	// cache when nil — also serves the service's RefreshTable solves.
	Strategy core.QueuingFFD
	// PMs is the pool the service admits into.
	PMs []cloud.PM
	// POn, POff seed the initial mapping table.
	POn, POff float64
	// MaxBatch caps how many requests one commit coalesces (default 256).
	// MaxBatch = 1 disables coalescing: every request commits alone, making
	// commit order equal submission order.
	MaxBatch int
	// Workers caps how many goroutines the committer fans the per-PM work of
	// one commit over: the rescoring of PMs touched by the batch's departures
	// and the whole-index rebuild after a table refresh both partition over
	// contiguous PM sub-ranges and merge in deterministic position order.
	// Arrivals always apply sequentially in Algorithm-2 order through the
	// first-fit tree. Scores are pure functions of the committed placement,
	// so every worker count produces bit-identical placements, snapshots and
	// stats for the same commit sequence — Workers = 1 (the default; 0 means
	// 1) reproduces the fully-sequential committer exactly, mirroring the
	// MaxBatch = 1 ≡ sequential-Online contract. Set runtime.GOMAXPROCS(0)
	// to use every core.
	Workers int
	// MaxWait bounds how long the committer waits to fill a batch after the
	// first request arrives. The default 0 never waits: the committer takes
	// whatever is queued and commits immediately, so batches form naturally
	// under load and latency stays minimal when idle.
	MaxWait time.Duration
	// QueueCap is the submission queue capacity (default 4096). Submitters
	// block when the queue is full — backpressure, not load shedding.
	QueueCap int
	// Registry receives placesvc_* metrics (placements/sec counters,
	// batch-size and queue-latency histograms, fleet gauges). Nil disables
	// instrumentation at the cost of one branch per commit.
	Registry *telemetry.Registry
	// Obs attaches the live observability plane: rolling queue-wait,
	// batch-apply and snapshot-publish latency windows, the interarrival
	// burstiness probe, and capacity-rejection storms feeding the flight
	// recorder. Nil disables it; the committer then pays one branch per
	// commit, same as Registry.
	Obs *obs.Plane
	// Admission attaches the admission-control layer ahead of the committer:
	// arrivals run through the compiled policy pipeline at submit time —
	// before they enter the queue, so sheds are real backpressure — and the
	// config's per-class deadlines become default contexts for Arrive*.
	// Nil (or an empty config, which compiles to the no-op policy) leaves
	// the service bit-identical to an unconfigured one.
	Admission *admission.Config
}

func (c Config) withDefaults() (Config, error) {
	if c.Strategy.MaxVMsPerPM < 1 {
		return c, fmt.Errorf("placesvc: strategy needs MaxVMsPerPM ≥ 1, got %d", c.Strategy.MaxVMsPerPM)
	}
	switch c.Strategy.Method {
	case core.ClusterRangeBuckets, core.ClusterKMeans, core.ClusterNone, core.ClusterQuantiles:
	default:
		return c, fmt.Errorf("placesvc: unknown cluster method %d", c.Strategy.Method)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.MaxBatch < 1 {
		return c, fmt.Errorf("placesvc: MaxBatch must be ≥ 1, got %d", c.MaxBatch)
	}
	if c.MaxWait < 0 {
		return c, fmt.Errorf("placesvc: MaxWait must be ≥ 0, got %v", c.MaxWait)
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Workers < 1 {
		return c, fmt.Errorf("placesvc: Workers must be ≥ 1, got %d", c.Workers)
	}
	if c.QueueCap == 0 {
		c.QueueCap = 4096
	}
	if c.QueueCap < 1 {
		return c, fmt.Errorf("placesvc: QueueCap must be ≥ 1, got %d", c.QueueCap)
	}
	return c, nil
}

// reqKind discriminates the request union. The arrival/departure kinds double
// as snapshot op-ring kinds.
type reqKind uint8

const (
	reqArrive reqKind = iota + 1
	reqArriveBatch
	reqDepart
	reqDepartBatch
	reqRefresh
)

// Cancellation states of a queued request. A cancellable waiter and the
// committer race on state with CAS: the waiter moves pending → abandoned when
// its context fires (and returns immediately, never touching the request
// again), the committer moves pending → claimed when it picks the batch up.
// Whoever loses the race defers to the winner: an abandoned request is
// skipped at commit time — never applied — and pooled by the committer; a
// claimed request is answered normally even if the context fires late.
const (
	reqPending int32 = iota
	reqClaimed
	reqAbandoned
)

// request is one queued operation plus its in-place response. Requests are
// pooled; the done channel (capacity 1) hands the request back to the waiter,
// which returns it to the pool after reading the response fields.
type request struct {
	kind  reqKind
	vm    cloud.VM   // reqArrive
	vms   []cloud.VM // reqArriveBatch
	vmID  int        // reqDepart
	vmIDs []int      // reqDepartBatch
	enq   time.Time  // submission time, set only when metrics are enabled

	// cancellable marks requests submitted with a cancellable context; only
	// those pay the CAS on state at commit pickup. state is a plain int32
	// accessed with atomic package functions because reset copies the struct.
	cancellable bool
	state       int32

	// migrate marks an ArriveMigrated request: an internal shard-to-shard
	// move, not a client arrival. The committer places it normally but keeps
	// it out of the client-stream accounting — no interarrival-probe sample,
	// and a capacity failure is reported to the caller without counting as a
	// Rejected VM or feeding the rejection-storm trigger.
	migrate bool

	// Response, written by the committer before signalling done.
	pmID     int
	unplaced []cloud.VM
	missing  []int // reqDepartBatch: ids that were not placed
	err      error
	fatal    bool // batch abort flag, set mid-apply

	done chan struct{}
}

func (r *request) reset() {
	*r = request{done: r.done}
}

// Stats is the O(1) counter block published with every snapshot.
type Stats struct {
	// Version counts commits; it increases by exactly 1 per commit.
	Version uint64
	// VMs and UsedPMs describe the fleet as of this snapshot.
	VMs     int
	UsedPMs int
	// Placed, Rejected and Departed count VMs (not requests): one batch
	// arrival of 10 VMs with 2 rejections adds 8 and 2.
	Placed   uint64
	Rejected uint64
	Departed uint64
	// Requests counts committed requests, Commits committed batches;
	// Requests/Commits is the realised mean batch size.
	Requests uint64
	Commits  uint64
	// Refreshes counts applied RefreshTable requests.
	Refreshes uint64
}

// Service is the concurrent admission front-end. All mutation methods are
// safe for concurrent use and block until their request commits; Snapshot and
// Stats never block on the committer.
type Service struct {
	strategy core.QueuingFFD
	online   *core.Online
	maxBatch int
	maxWait  time.Duration

	mu     sync.RWMutex // guards closed vs. sends on ch
	closed bool
	ch     chan *request
	wg     sync.WaitGroup
	pool   sync.Pool

	// Committer-owned state (no locking: single goroutine).
	stats Stats
	base  *cloud.Placement // immutable snapshot base
	ring  *opRing          // lock-free op log since base (see ring.go)
	batch []*request       // reused per-commit scratch
	arrs  []arrival        // reused per-commit scratch
	avms  []cloud.VM       // reused per-commit scratch
	dirty []int            // reused per-commit scratch: PMs touched by departures

	snap syncSnapshot

	metrics *svcMetrics
	obs     *obs.Plane

	// Admission layer. policy is nil when no Admission config was given;
	// admMu serialises Decide (policies are single-writer) and guards
	// shedEwma. slots is the fleet's total VM-slot count (PMs ×
	// MaxVMsPerPM), stamped into every snapshot so Occupancy/Headroom reads
	// are O(1).
	admMu    sync.Mutex
	policy   *admission.Pipeline
	admCfg   *admission.Config
	slots    int
	shedEwma float64
}

// shedEwmaAlpha smooths the per-decision shed indicator into the
// admission_shed_rate_ewma gauge: 1/64 ≈ the last ~64 decisions dominate.
const shedEwmaAlpha = 1.0 / 64

// arrival links one VM awaiting placement back to its request. Plain Arrive
// requests carry exactly one; ArriveBatch requests contribute one per VM.
type arrival struct {
	vm  cloud.VM
	req *request
}

// New builds the service and starts its committer. Close releases it.
func New(cfg Config) (*Service, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	online, err := core.NewOnline(cfg.Strategy, cfg.PMs, cfg.POn, cfg.POff)
	if err != nil {
		return nil, err
	}
	online.Workers = cfg.Workers
	var policy *admission.Pipeline
	policyName := ""
	if cfg.Admission != nil {
		if policy, err = cfg.Admission.Compile(); err != nil {
			return nil, err
		}
		policyName = policy.Name()
	}
	s := &Service{
		strategy: cfg.Strategy,
		online:   online,
		maxBatch: cfg.MaxBatch,
		maxWait:  cfg.MaxWait,
		ch:       make(chan *request, cfg.QueueCap),
		base:     online.Placement().Clone(),
		ring:     newOpRing(),
		metrics:  newSvcMetrics(cfg.Registry, policyName),
		obs:      cfg.Obs,
		policy:   policy,
		admCfg:   cfg.Admission,
		slots:    len(cfg.PMs) * cfg.Strategy.MaxVMsPerPM,
	}
	s.pool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	s.publish()
	s.wg.Add(1)
	go s.run()
	return s, nil
}

// Arrive places one VM and returns the chosen PM id. Pool exhaustion is
// reported as an error wrapping cloud.ErrNoCapacity; an admission-policy shed
// (only possible when Config.Admission is set) as one wrapping
// admission.ErrShed. Equivalent to ArriveClass with a background context and
// ClassStandard.
func (s *Service) Arrive(vm cloud.VM) (int, error) {
	return s.arrive(context.Background(), vm, admission.ClassStandard)
}

// ArriveCtx is Arrive honoring ctx while queued: if ctx fires before the
// committer picks the request up, the request is skipped at commit time —
// never applied — and ArriveCtx returns ctx.Err(). Once the committer claims
// the request, the placement commits and is returned even if ctx fires late.
func (s *Service) ArriveCtx(ctx context.Context, vm cloud.VM) (int, error) {
	return s.arrive(ctx, vm, admission.ClassStandard)
}

// ArriveClass is ArriveCtx with an explicit priority class. The class feeds
// the admission policy (lower classes shed first) and selects the config's
// default deadline, applied when ctx carries none.
func (s *Service) ArriveClass(ctx context.Context, vm cloud.VM, class admission.Class) (int, error) {
	return s.arrive(ctx, vm, class)
}

// ArriveMigrated places one VM through the internal migration path: the
// arrival half of a shard-to-shard move (shardsvc rebalance transfers and
// their rollbacks). The VM is live, already-admitted capacity in flight
// between fleets, so the admission policy never sees it — re-running
// admission could shed, i.e. evict, a placed VM — mirroring the departure
// contract (departures free capacity and skip admission too). It is also
// kept out of client-stream accounting: no default class deadline, no
// interarrival-probe sample (thinning or padding a point process changes its
// CV), and a capacity failure returns cloud.ErrNoCapacity without counting
// toward Stats.Rejected or the rejection-storm trigger — the migration layer
// does its own failure bookkeeping. The Eq. (17) capacity test itself still
// applies in full.
func (s *Service) ArriveMigrated(vm cloud.VM) (int, error) {
	r := s.get(reqArrive)
	r.vm = vm
	r.migrate = true
	if err := s.submit(r); err != nil {
		return 0, err
	}
	pmID, err := r.pmID, r.err
	s.put(r)
	return pmID, err
}

func (s *Service) arrive(ctx context.Context, vm cloud.VM, class admission.Class) (int, error) {
	if s.policy != nil {
		if err := s.admit(1, class); err != nil {
			return 0, err
		}
		var cancel context.CancelFunc
		if ctx, cancel = s.deadlineCtx(ctx, class); cancel != nil {
			defer cancel()
		}
	}
	r := s.get(reqArrive)
	r.vm = vm
	if err := s.submitCtx(ctx, r); err != nil {
		return 0, err
	}
	pmID, err := r.pmID, r.err
	s.put(r)
	return pmID, err
}

// ArriveBatch places a batch with the Online.ArriveBatch contract: VMs no PM
// can admit come back in unplaced; any other failure aborts the batch's
// remaining VMs and is returned as the error. The batch's VMs are ordered
// together with every other arrival coalesced into the same commit.
func (s *Service) ArriveBatch(vms []cloud.VM) (unplaced []cloud.VM, err error) {
	return s.arriveBatch(context.Background(), vms, admission.ClassStandard)
}

// ArriveBatchCtx is ArriveBatch honoring ctx while queued, with the ArriveCtx
// cancellation contract. The admission policy charges the whole batch at once
// (cost = len(vms)): a shed rejects the batch entire, before it queues.
func (s *Service) ArriveBatchCtx(ctx context.Context, vms []cloud.VM) (unplaced []cloud.VM, err error) {
	return s.arriveBatch(ctx, vms, admission.ClassStandard)
}

// ArriveBatchClass is ArriveBatchCtx with an explicit priority class.
func (s *Service) ArriveBatchClass(ctx context.Context, vms []cloud.VM, class admission.Class) (unplaced []cloud.VM, err error) {
	return s.arriveBatch(ctx, vms, class)
}

func (s *Service) arriveBatch(ctx context.Context, vms []cloud.VM, class admission.Class) (unplaced []cloud.VM, err error) {
	if err := cloud.ValidateVMs(vms); err != nil {
		return nil, err
	}
	if len(vms) == 0 {
		return nil, nil
	}
	if s.policy != nil {
		if err := s.admit(len(vms), class); err != nil {
			return nil, err
		}
		var cancel context.CancelFunc
		if ctx, cancel = s.deadlineCtx(ctx, class); cancel != nil {
			defer cancel()
		}
	}
	r := s.get(reqArriveBatch)
	r.vms = vms
	if err := s.submitCtx(ctx, r); err != nil {
		return nil, err
	}
	unplaced, err = r.unplaced, r.err
	s.put(r)
	return unplaced, err
}

// Depart removes a VM.
func (s *Service) Depart(vmID int) error {
	return s.DepartCtx(context.Background(), vmID)
}

// DepartCtx is Depart honoring ctx while queued, with the ArriveCtx
// cancellation contract. Departures free capacity, so they never run through
// the admission policy and carry no default deadline — only the caller's own
// ctx can expire them.
func (s *Service) DepartCtx(ctx context.Context, vmID int) error {
	r := s.get(reqDepart)
	r.vmID = vmID
	if err := s.submitCtx(ctx, r); err != nil {
		return err
	}
	err := r.err
	s.put(r)
	return err
}

// admit runs one policy decision for an arrival of the given VM count and
// class, charging metrics and the obs shed-storm counter on a shed. Decisions
// serialise under admMu: policies are single-writer, and the lock also makes
// the wall-clock timestamps fed to the policy non-decreasing.
func (s *Service) admit(cost int, class admission.Class) error {
	// The published snapshot's O(1) occupancy summary — NaN on a slotless
	// (empty-pool) service, which the gate treats as "no reading".
	occ := s.snap.Load().Occupancy()
	s.admMu.Lock()
	d := s.policy.Decide(admission.Request{
		TimeNs:    time.Now().UnixNano(),
		Cost:      cost,
		Class:     class,
		Occupancy: occ,
	})
	shedInd := 0.0
	if !d.Admit {
		shedInd = 1
	}
	s.shedEwma += shedEwmaAlpha * (shedInd - s.shedEwma)
	ewma := s.shedEwma
	s.admMu.Unlock()
	if m := s.metrics; m != nil {
		m.admQueueDepth.Set(float64(len(s.ch)))
		m.shedEwma.Set(ewma)
	}
	if d.Admit {
		return nil
	}
	if m := s.metrics; m != nil {
		m.sheds[class].Add(uint64(cost))
	}
	if o := s.obs; o != nil {
		o.ObserveSheds(cost)
	}
	return fmt.Errorf("placesvc: %s arrival shed by %s policy: %w", class, d.Reason, admission.ErrShed)
}

// deadlineCtx applies the admission config's default deadline for class when
// ctx carries none of its own. The returned cancel is nil when ctx is passed
// through unchanged.
func (s *Service) deadlineCtx(ctx context.Context, class admission.Class) (context.Context, context.CancelFunc) {
	if s.admCfg == nil {
		return ctx, nil
	}
	d := s.admCfg.Deadline(class)
	if d <= 0 {
		return ctx, nil
	}
	if _, has := ctx.Deadline(); has {
		return ctx, nil
	}
	return context.WithTimeout(ctx, d)
}

// DepartBatch removes a batch of VMs in one request — the departure
// counterpart of ArriveBatch. All removals commit together; ids that were not
// placed come back in missing (the batch's other departures still apply).
// Batched departures are where the committer's parallel rescore earns its
// keep: the batch frees capacity across many PMs, and the touched PMs are
// rescored in one fan-out instead of one tree update per departure.
func (s *Service) DepartBatch(vmIDs []int) (missing []int, err error) {
	if len(vmIDs) == 0 {
		return nil, nil
	}
	r := s.get(reqDepartBatch)
	r.vmIDs = vmIDs
	if err := s.submit(r); err != nil {
		return nil, err
	}
	missing, err = r.missing, r.err
	s.put(r)
	return missing, err
}

// RefreshTable recomputes the mapping table from the fleet's rounded switch
// probabilities (§IV-E periodic recalculation). The solve goes through the
// strategy's table cache, so concurrent refreshes of the same cohort —
// within this service or across services sharing the cache — solve once.
func (s *Service) RefreshTable() error {
	r := s.get(reqRefresh)
	if err := s.submit(r); err != nil {
		return err
	}
	err := r.err
	s.put(r)
	return err
}

// Snapshot returns the immutable state published by the latest commit.
// Reading it never blocks admission.
func (s *Service) Snapshot() *Snapshot { return s.snap.Load() }

// Stats returns the latest published counters.
func (s *Service) Stats() Stats { return s.snap.Load().Stats() }

// QueueDepth returns the number of requests currently buffered ahead of the
// committer — an instantaneous backpressure reading. Safe for concurrent
// use; the shardsvc federation exports it per shard.
func (s *Service) QueueDepth() int { return len(s.ch) }

// Close stops the committer after draining every queued request. Requests
// submitted after Close fail with ErrClosed; Close itself is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.ch)
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Service) get(kind reqKind) *request {
	r := s.pool.Get().(*request)
	r.reset()
	r.kind = kind
	return r
}

func (s *Service) put(r *request) { s.pool.Put(r) }

// submit enqueues the request and waits for its commit. The RLock pairs with
// Close's Lock so a send can never race the channel close; a full queue
// blocks the submitter (backpressure) while the committer keeps draining.
func (s *Service) submit(r *request) error {
	if s.metrics != nil || s.obs != nil {
		r.enq = time.Now()
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.put(r)
		return ErrClosed
	}
	s.ch <- r
	s.mu.RUnlock()
	<-r.done
	return nil
}

// submitCtx is submit honoring ctx. Non-cancellable contexts (background,
// valueless) take the exact submit path, preserving the bit-identical
// equivalence contract; cancellable ones race the committer on the request's
// state word — see the reqPending state machine. Whichever side loses its CAS
// defers to the winner, so a request is either applied and answered, or
// abandoned and skipped, never both and never leaked.
func (s *Service) submitCtx(ctx context.Context, r *request) error {
	if ctx.Done() == nil {
		return s.submit(r)
	}
	if err := ctx.Err(); err != nil {
		s.put(r)
		return err
	}
	r.cancellable = true
	if s.metrics != nil || s.obs != nil {
		r.enq = time.Now()
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.put(r)
		return ErrClosed
	}
	select {
	case s.ch <- r:
		s.mu.RUnlock()
	case <-ctx.Done():
		// Never enqueued: the waiter still owns the request.
		s.mu.RUnlock()
		s.put(r)
		return ctx.Err()
	}
	select {
	case <-r.done:
		return nil
	case <-ctx.Done():
		if atomic.CompareAndSwapInt32(&r.state, reqPending, reqAbandoned) {
			// Ownership passed to the committer, which will skip and pool
			// the request; the waiter must not touch it again.
			return ctx.Err()
		}
		// The committer claimed it first: the answer is imminent.
		<-r.done
		return nil
	}
}

// run is the committer: block for one request, coalesce up to maxBatch
// (waiting at most maxWait when configured), commit, repeat. A closed channel
// keeps delivering its buffered requests, so every queued request commits
// before the committer exits.
func (s *Service) run() {
	defer s.wg.Done()
	var timer *time.Timer
	for {
		first, ok := <-s.ch
		if !ok {
			return
		}
		s.batch = append(s.batch[:0], first)
		if s.maxWait > 0 {
			if timer == nil {
				timer = time.NewTimer(s.maxWait)
			} else {
				timer.Reset(s.maxWait)
			}
		collect:
			for len(s.batch) < s.maxBatch {
				select {
				case r, chOpen := <-s.ch:
					if !chOpen {
						break collect
					}
					s.batch = append(s.batch, r)
				case <-timer.C:
					break collect
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		} else {
		drain:
			for len(s.batch) < s.maxBatch {
				select {
				case r, chOpen := <-s.ch:
					if !chOpen {
						break drain
					}
					s.batch = append(s.batch, r)
				default:
					break drain
				}
			}
		}
		s.commit(s.batch)
	}
}

// commit applies one coalesced batch: departures, then Algorithm-2-ordered
// arrivals, then refreshes; publishes the snapshot; finally answers every
// waiter. Responding after publication guarantees a client that reads the
// snapshot after its response sees a version ≥ the commit that placed it.
func (s *Service) commit(batch []*request) {
	// Phase 0: claim. Cancellable requests race their waiters on the state
	// word; one the waiter abandoned first is dropped from the batch here —
	// before any counting or applying — and pooled by the committer, which
	// now owns it. Its waiter has already returned ctx.Err() and will never
	// touch it again. Non-cancellable requests skip the CAS entirely.
	kept := batch[:0]
	for _, r := range batch {
		if r.cancellable && !atomic.CompareAndSwapInt32(&r.state, reqPending, reqClaimed) {
			s.put(r)
			continue
		}
		kept = append(kept, r)
	}
	if batch = kept; len(batch) == 0 {
		return
	}
	// Span timing is sampled one commit in obsSampleEvery: the rolling
	// quantiles only need a uniform subsample, and skipping the clock reads
	// and window pushes on the other commits keeps the obs-on overhead on
	// BenchmarkServeAdmit single-digit. Sampling keys off the commit number,
	// so it is deterministic and load-independent. The interarrival probe is
	// NOT sampled — thinning a point process changes its CV — and arrival
	// stamps cost nothing extra here (submit already took them).
	sampled := s.obs != nil && s.stats.Commits%obsSampleEvery == 0
	var applyStart time.Time
	if s.metrics != nil || sampled {
		applyStart = time.Now()
	}
	if m := s.metrics; m != nil {
		m.commits.Inc()
		m.requests.Add(uint64(len(batch)))
		m.batchSize.Observe(float64(len(batch)))
		for _, r := range batch {
			m.queueLatency.Observe(applyStart.Sub(r.enq))
		}
		m.queueDepth.Set(float64(len(s.ch)))
	}
	if o := s.obs; o != nil {
		for _, r := range batch {
			if sampled {
				o.QueueWait.ObserveAt(applyStart, applyStart.Sub(r.enq))
			}
			if (r.kind == reqArrive && !r.migrate) || r.kind == reqArriveBatch {
				// Submission times drive the interarrival-CV burstiness probe.
				// Migrations are internal re-arrivals, not client load, and
				// would distort the CV.
				o.Probes.ObserveArrival(r.enq)
			}
		}
	}
	rejectedBefore := s.stats.Rejected
	s.stats.Commits++
	s.stats.Requests += uint64(len(batch))

	// Phase 1: departures, in submission order. Removals mutate the placement
	// immediately; rescoring the PMs they touched is deferred, collected in
	// s.dirty, and fanned out across the configured Workers once the whole
	// phase has applied — the fit index is stale in between, which is safe
	// because nothing consults it until the arrivals of phase 2, and the
	// deferred rescore reads the final post-departure placement (identical
	// scores to per-departure refreshes, at any worker count).
	s.dirty = s.dirty[:0]
	for _, r := range batch {
		switch r.kind {
		case reqDepart:
			var pmID int
			if pmID, r.err = s.online.DepartNoRefresh(r.vmID); r.err == nil {
				s.ring.append(op{kind: reqDepart, vmID: r.vmID})
				s.dirty = append(s.dirty, pmID)
				s.stats.Departed++
				if s.metrics != nil {
					s.metrics.departures.Inc()
				}
			}
		case reqDepartBatch:
			for _, vmID := range r.vmIDs {
				pmID, err := s.online.DepartNoRefresh(vmID)
				if err != nil {
					r.missing = append(r.missing, vmID)
					continue
				}
				s.ring.append(op{kind: reqDepart, vmID: vmID})
				s.dirty = append(s.dirty, pmID)
				s.stats.Departed++
				if s.metrics != nil {
					s.metrics.departures.Inc()
				}
			}
		}
	}
	s.online.RefreshPMs(s.dirty)

	// Phase 2: arrivals, ordered across the whole batch.
	s.arrs = s.arrs[:0]
	for _, r := range batch {
		switch r.kind {
		case reqArrive:
			s.arrs = append(s.arrs, arrival{vm: r.vm, req: r})
		case reqArriveBatch:
			for _, vm := range r.vms {
				s.arrs = append(s.arrs, arrival{vm: vm, req: r})
			}
		}
	}
	for _, a := range s.order(s.arrs) {
		r := a.req
		if r.fatal {
			continue // a real error already aborted this batch request
		}
		pmID, err := s.online.Arrive(a.vm)
		if err == nil {
			s.ring.append(op{kind: reqArrive, vm: a.vm, pmID: pmID})
			s.stats.Placed++
			if s.metrics != nil {
				s.metrics.placements.Inc()
			}
			if r.kind == reqArrive {
				r.pmID = pmID
			}
			continue
		}
		if r.kind == reqArrive {
			r.err = err
			if errors.Is(err, cloud.ErrNoCapacity) && !r.migrate {
				s.stats.Rejected++
				if s.metrics != nil {
					s.metrics.rejections.Inc()
				}
			}
			continue
		}
		// Batch member: exhaustion collects, anything else aborts the batch.
		if errors.Is(err, cloud.ErrNoCapacity) {
			r.unplaced = append(r.unplaced, a.vm)
			s.stats.Rejected++
			if s.metrics != nil {
				s.metrics.rejections.Inc()
			}
		} else {
			r.err = err
			r.unplaced = nil
			r.fatal = true
		}
	}

	// Phase 3: refreshes observe the post-commit fleet; coalesced refreshes
	// in one batch are idempotent, so the first applies and the rest share
	// its result.
	refreshed := false
	var refreshErr error
	for _, r := range batch {
		if r.kind != reqRefresh {
			continue
		}
		if !refreshed {
			refreshErr = s.online.RefreshTable()
			refreshed = true
			if refreshErr == nil {
				s.stats.Refreshes++
				if s.metrics != nil {
					s.metrics.refreshes.Inc()
				}
			}
		}
		r.err = refreshErr
	}

	var pubStart time.Time
	if sampled {
		pubStart = time.Now()
	}
	s.publish()
	if o := s.obs; o != nil {
		if sampled {
			now := time.Now()
			// BatchApply spans the three apply phases; SnapshotPublish the
			// publication that follows them.
			o.BatchApply.ObserveAt(pubStart, pubStart.Sub(applyStart))
			o.SnapshotPublish.ObserveAt(now, now.Sub(pubStart))
		}
		if d := s.stats.Rejected - rejectedBefore; d > 0 {
			// Feed capacity rejections to the flight recorder's storm
			// trigger; placesvc emits no trace events, so this is the
			// out-of-band path. Never sampled: storms must count every
			// rejection.
			o.ObserveRejections(int(d))
		}
	}
	for _, r := range batch {
		r.done <- struct{}{}
	}
}

// order applies the Algorithm-2 cluster-and-sort across the batch's
// arrivals. Zero or one arrival commits as-is; an ordering failure (a
// strategy misconfiguration caught at New, so effectively unreachable) falls
// back to submission order, which is always safe — ordering is a packing
// heuristic, not a correctness requirement.
func (s *Service) order(arrs []arrival) []arrival {
	if len(arrs) < 2 {
		return arrs
	}
	s.avms = s.avms[:0]
	for _, a := range arrs {
		s.avms = append(s.avms, a.vm)
	}
	ordered, err := s.strategy.Order(s.avms)
	if err != nil {
		return arrs
	}
	// Re-link ordered VMs to their requests. Ids can repeat across a batch
	// (the duplicate fails Assign later), so pair each ordered VM with the
	// first not-yet-taken arrival of that id.
	byID := make(map[int][]int, len(arrs))
	for i, a := range arrs {
		byID[a.vm.ID] = append(byID[a.vm.ID], i)
	}
	out := make([]arrival, 0, len(arrs))
	for _, vm := range ordered {
		idxs := byID[vm.ID]
		i := idxs[0]
		byID[vm.ID] = idxs[1:]
		out = append(out, arrs[i])
	}
	return out
}
