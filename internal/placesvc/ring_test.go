package placesvc

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/telemetry"
)

// Snapshots taken at arbitrary points must materialise correctly across op
// chunk boundaries: the window (head, skip, count) replays exactly the ops
// committed at snapshot time, no matter how many chunks it spans.
func TestRingChunkBoundaries(t *testing.T) {
	svc := newServiceT(t, Config{PMs: mkPool(5000, 1e9), MaxBatch: 1})
	type point struct {
		snap *Snapshot
		vms  int
	}
	var points []point
	total := 3*opChunkSize + 17
	for i := 0; i < total; i++ {
		if _, err := svc.Arrive(mkVM(i, 1, 1)); err != nil {
			t.Fatal(err)
		}
		// Sample around the chunk boundaries and at a few interior points.
		if r := (i + 1) % opChunkSize; r <= 1 || r == opChunkSize-1 || i%97 == 0 {
			points = append(points, point{svc.Snapshot(), i + 1})
		}
	}
	for _, pt := range points {
		p, err := pt.snap.Placement()
		if err != nil {
			t.Fatal(err)
		}
		if p.NumVMs() != pt.vms {
			t.Errorf("snapshot v%d materialised %d VMs, want %d", pt.snap.Version(), p.NumVMs(), pt.vms)
		}
	}
}

// When readers materialise snapshots, the committer adopts their placements
// as new bases instead of cloning: the adoptions counter moves, the clone
// fallback stays untouched, and snapshots published before the base swap
// (earlier epochs) still materialise correctly afterwards.
func TestSnapshotAdoption(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := newServiceT(t, Config{PMs: mkPool(5000, 1e9), MaxBatch: 1, Registry: reg})
	firstEpoch := svc.Snapshot().Epoch()
	var preSwap *Snapshot
	for i := 0; i < 6*rebuildMinOps; i++ {
		if _, err := svc.Arrive(mkVM(i, 1, 1)); err != nil {
			t.Fatal(err)
		}
		snap := svc.Snapshot()
		if preSwap == nil && i > rebuildMinOps/2 {
			preSwap = snap // old-epoch snapshot to check after the swap
		}
		// A monitoring reader: materialise the latest snapshot so the
		// committer has something to adopt.
		if _, err := snap.Placement(); err != nil {
			t.Fatal(err)
		}
	}
	tsnap := reg.Snapshot()
	if got := tsnap.Counters["placesvc_snapshot_adoptions_total"]; got == 0 {
		t.Error("no snapshot adoptions despite a reader materialising every version")
	}
	if got := tsnap.Counters["placesvc_snapshot_rebuilds_total"]; got != 0 {
		t.Errorf("clone fallback ran %d times despite adoptable materialisations", got)
	}
	last := svc.Snapshot()
	if last.Epoch() == firstEpoch {
		t.Error("epoch never advanced across adoptions")
	}
	p, err := preSwap.Placement()
	if err != nil {
		t.Fatal(err)
	}
	if want := int(preSwap.Stats().Placed); p.NumVMs() != want {
		t.Errorf("pre-swap snapshot materialised %d VMs, want %d", p.NumVMs(), want)
	}
}

// With nobody reading snapshots, ring growth is bounded by the clone
// fallback: a churny arrive/depart workload whose fleet stays small must
// trigger base re-clones (rebuilds counter) and keep the window short.
func TestSnapshotCloneFallback(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := newServiceT(t, Config{PMs: mkPool(50, 1e9), MaxBatch: 1, Registry: reg})
	for i := 0; i < 20*rebuildMinOps; i++ {
		if _, err := svc.Arrive(mkVM(i, 1, 1)); err != nil {
			t.Fatal(err)
		}
		if err := svc.Depart(i); err != nil {
			t.Fatal(err)
		}
	}
	tsnap := reg.Snapshot()
	if got := tsnap.Counters["placesvc_snapshot_rebuilds_total"]; got == 0 {
		t.Error("ring window never rebased: clone fallback did not bound an unread ring")
	}
	if w := svc.ring.count; w > cloneFallbackFactor*rebuildMinOps+2*rebuildMinOps {
		t.Errorf("ring window grew to %d ops despite the fallback", w)
	}
	p, err := svc.Snapshot().Placement()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVMs() != 0 {
		t.Errorf("final snapshot holds %d VMs, want 0", p.NumVMs())
	}
}

// Concurrent readers materialising every published snapshot while writers
// churn the fleet: the lock-free publication edge must survive the race
// detector, and every materialisation must be internally consistent
// (Stats().VMs == materialised VM count).
func TestRingConcurrentReaders(t *testing.T) {
	svc := newServiceT(t, Config{PMs: mkPool(2000, 1e9), MaxBatch: 16})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := svc.Snapshot()
				p, err := snap.Placement()
				if err != nil {
					t.Errorf("materialise: %v", err)
					return
				}
				if p.NumVMs() != snap.Stats().VMs {
					t.Errorf("snapshot v%d: materialised %d VMs, stats say %d",
						snap.Version(), p.NumVMs(), snap.Stats().VMs)
					return
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 400; i++ {
				id := w*1_000_000 + i
				if _, err := svc.Arrive(mkVM(id, 1, 1)); err != nil && !errors.Is(err, cloud.ErrNoCapacity) {
					t.Errorf("arrive: %v", err)
					return
				}
				if i%3 == 2 {
					if err := svc.Depart(id); err != nil {
						t.Errorf("depart: %v", err)
						return
					}
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
}

// DepartBatch commits all its removals together, reports unknown ids in
// missing, and leaves the fleet identical to per-id departures.
func TestDepartBatch(t *testing.T) {
	svc := newServiceT(t, Config{PMs: mkPool(50, 100), MaxBatch: 8})
	for i := 0; i < 20; i++ {
		if _, err := svc.Arrive(mkVM(i, 5, 3)); err != nil {
			t.Fatal(err)
		}
	}
	ids := []int{0, 3, 99, 5, 3} // 99 unknown; 3 repeats (second is gone)
	missing, err := svc.DepartBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprint([]int{99, 3}); fmt.Sprint(missing) != want {
		t.Errorf("missing = %v, want %v", missing, want)
	}
	st := svc.Stats()
	if st.VMs != 17 {
		t.Errorf("fleet holds %d VMs after batch departure, want 17", st.VMs)
	}
	if st.Departed != 3 {
		t.Errorf("Departed = %d, want 3", st.Departed)
	}
	if missing, err := svc.DepartBatch(nil); err != nil || missing != nil {
		t.Errorf("empty DepartBatch = (%v, %v), want (nil, nil)", missing, err)
	}
	p, err := svc.Snapshot().Placement()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 3, 5} {
		if _, ok := p.PMOf(id); ok {
			t.Errorf("VM %d still placed after DepartBatch", id)
		}
	}
}
