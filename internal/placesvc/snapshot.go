package placesvc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cloud"
	"repro/internal/queuing"
)

// op is one committed mutation in the snapshot journal: an arrival with its
// chosen PM, or a departure. Entries are immutable once appended.
type op struct {
	kind reqKind // reqArrive or reqDepart
	vm   cloud.VM
	pmID int
	vmID int
}

// Snapshot is an immutable view of the service state as of one commit.
//
// Publication is O(1): the snapshot holds the stats block, the current
// mapping table, a shared immutable base placement, and the journal of ops
// committed since the base was cloned. The committer re-clones the base only
// when the journal outgrows half the fleet, so snapshot upkeep costs O(1)
// amortised per admission instead of an O(fleet) clone per commit.
//
// Placement and Overflows materialise the full placement on demand (clone
// base, replay journal — O(fleet)) and memoise it, so concurrent monitoring
// readers of the same snapshot pay for one materialisation. None of this ever
// touches the live placement, so reads never block — and are never blocked
// by — admission.
type Snapshot struct {
	stats Stats
	table *queuing.MappingTable
	base  *cloud.Placement
	ops   []op

	once   sync.Once
	mat    *cloud.Placement
	matErr error
}

// Version returns the commit number that published this snapshot.
func (s *Snapshot) Version() uint64 { return s.stats.Version }

// Stats returns the snapshot's counter block.
func (s *Snapshot) Stats() Stats { return s.stats }

// Table returns the mapping table in force at this snapshot.
func (s *Snapshot) Table() *queuing.MappingTable { return s.table }

// Placement materialises the placement as of this snapshot. The result is
// memoised and shared: callers must treat it as read-only.
func (s *Snapshot) Placement() (*cloud.Placement, error) {
	s.once.Do(func() {
		p := s.base.Clone()
		for _, o := range s.ops {
			switch o.kind {
			case reqArrive:
				if err := p.Assign(o.vm, o.pmID); err != nil {
					s.matErr = fmt.Errorf("placesvc: replaying journal: %w", err)
					return
				}
			case reqDepart:
				if _, err := p.Remove(o.vmID); err != nil {
					s.matErr = fmt.Errorf("placesvc: replaying journal: %w", err)
					return
				}
			}
		}
		s.mat = p
	})
	return s.mat, s.matErr
}

// Overflows audits the snapshot against its own table: PMs whose host set no
// longer satisfies Eq. (17) — possible after a refresh tightened the mapping.
func (s *Snapshot) Overflows() ([]cloud.Violation, error) {
	p, err := s.Placement()
	if err != nil {
		return nil, err
	}
	return cloud.CheckReserved(p, s.table), nil
}

// syncSnapshot is the atomically-swapped snapshot cell.
type syncSnapshot struct {
	p atomic.Pointer[Snapshot]
}

func (c *syncSnapshot) Load() *Snapshot { return c.p.Load() }

// rebuildMinOps is the journal length below which the committer never
// re-clones the base — tiny fleets would otherwise re-clone every commit.
const rebuildMinOps = 64

// publish refreshes the committer's snapshot cell after a commit (and once at
// construction). When the journal has outgrown max(rebuildMinOps, fleet/2)
// the base is re-cloned from the live placement and the journal restarts —
// never truncated in place, because published snapshots still reference the
// old backing array.
func (s *Service) publish() {
	live := s.online.Placement()
	s.stats.Version = s.stats.Commits
	s.stats.VMs = live.NumVMs()
	s.stats.UsedPMs = live.NumUsedPMs()
	if n := len(s.journal); n > rebuildMinOps && n > live.NumVMs()/2 {
		s.base = live.Clone()
		s.journal = nil
		if s.metrics != nil {
			s.metrics.rebuilds.Inc()
		}
	}
	snap := &Snapshot{
		stats: s.stats,
		table: s.online.Table(),
		base:  s.base,
		ops:   s.journal,
	}
	s.snap.p.Store(snap)
	if m := s.metrics; m != nil {
		m.version.Set(float64(s.stats.Version))
		m.vms.Set(float64(s.stats.VMs))
		m.usedPMs.Set(float64(s.stats.UsedPMs))
	}
}
