package placesvc

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cloud"
	"repro/internal/queuing"
)

// op is one committed mutation in the snapshot op ring: an arrival with its
// chosen PM, or a departure. Entries are immutable once appended.
type op struct {
	kind reqKind // reqArrive or reqDepart
	vm   cloud.VM
	pmID int
	vmID int
}

// Snapshot is an immutable view of the service state as of one commit.
//
// Publication is O(1) and allocation-light: the snapshot holds the stats
// block, the current mapping table, a shared immutable base placement, and a
// window into the lock-free op ring — (head, skip, count) locating the ops
// committed since the base, plus the append position at publish time
// (endChunk, endOff) so the committer can later adopt this snapshot's
// materialisation as a new base. The committer never clones on the commit
// path while readers keep materialising: each materialised placement is
// recycled as the next base (see Service.publish), so snapshot upkeep stays
// O(1) per admission with no clone bursts.
//
// Placement and Overflows materialise the full placement on demand (clone
// base, replay the ring window — O(fleet + count)) and memoise it, so
// concurrent monitoring readers of the same snapshot pay for one
// materialisation. None of this ever touches the live placement, so reads
// never block — and are never blocked by — admission.
type Snapshot struct {
	stats Stats
	table *queuing.MappingTable
	base  *cloud.Placement
	slots int // fleet slot count: PMs × MaxVMsPerPM, fixed at construction

	// Ring window, relative to base: replay `count` ops starting at
	// head.ops[skip]. epoch names the base lineage; endChunk/endOff is the
	// ring's append position when this snapshot was published.
	head     *opChunk
	skip     int
	count    int
	epoch    uint64
	endChunk *opChunk
	endOff   int

	once     sync.Once
	mat      *cloud.Placement
	matErr   error
	matReady atomic.Bool // publication edge from reader to committer
}

// Version returns the commit number that published this snapshot.
func (s *Snapshot) Version() uint64 { return s.stats.Version }

// Epoch returns the snapshot-base lineage this snapshot belongs to. The epoch
// advances every time the committer swaps the shared base placement —
// adopting a reader-materialised snapshot or the clone fallback; two
// snapshots with equal epochs share one base and differ only in their ring
// windows.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Stats returns the snapshot's counter block.
func (s *Snapshot) Stats() Stats { return s.stats }

// Slots returns the fleet's total Eq. (17) admission slots — PMs ×
// MaxVMsPerPM, the hard ceiling on how many VMs the mapping table ever lets
// the service host at once.
func (s *Snapshot) Slots() int { return s.slots }

// Headroom returns the free Eq. (17) slot count as of this snapshot:
// Slots() minus the placed VMs. It is the O(1) load summary the shardsvc
// router's power-of-d choice and the admission OccupancyGate read instead of
// recomputing occupancy from a materialised placement — like Placement and
// Overflows it is derived once per snapshot, but from the published stats
// block alone, so reading it never replays the op ring.
func (s *Snapshot) Headroom() int { return s.slots - s.stats.VMs }

// Occupancy returns the fleet slot occupancy VMs/Slots in [0, 1] — the
// denominator-normalised complement of Headroom, in the units the admission
// OccupancyGate thresholds on. NaN when the service has no slots (an empty
// PM pool), which the gate treats as "no reading".
func (s *Snapshot) Occupancy() float64 {
	if s.slots <= 0 {
		return math.NaN()
	}
	return float64(s.stats.VMs) / float64(s.slots)
}

// Table returns the mapping table in force at this snapshot.
func (s *Snapshot) Table() *queuing.MappingTable { return s.table }

// Placement materialises the placement as of this snapshot: clone the shared
// base, replay the ring window. The result is memoised and shared — callers
// must treat it as read-only (the committer may adopt it as the next base).
func (s *Snapshot) Placement() (*cloud.Placement, error) {
	s.once.Do(func() {
		p := s.base.Clone()
		c, idx := s.head, s.skip
		for i := 0; i < s.count; i++ {
			if idx == opChunkSize {
				c, idx = c.next, 0
			}
			o := c.ops[idx]
			idx++
			switch o.kind {
			case reqArrive:
				if err := p.Assign(o.vm, o.pmID); err != nil {
					s.matErr = fmt.Errorf("placesvc: replaying op ring: %w", err)
					s.matReady.Store(true)
					return
				}
			case reqDepart:
				if _, err := p.Remove(o.vmID); err != nil {
					s.matErr = fmt.Errorf("placesvc: replaying op ring: %w", err)
					s.matReady.Store(true)
					return
				}
			}
		}
		s.mat = p
		s.matReady.Store(true)
	})
	return s.mat, s.matErr
}

// Overflows audits the snapshot against its own table: PMs whose host set no
// longer satisfies Eq. (17) — possible after a refresh tightened the mapping.
func (s *Snapshot) Overflows() ([]cloud.Violation, error) {
	p, err := s.Placement()
	if err != nil {
		return nil, err
	}
	return cloud.CheckReserved(p, s.table), nil
}

// syncSnapshot is the atomically-swapped snapshot cell.
type syncSnapshot struct {
	p atomic.Pointer[Snapshot]
}

func (c *syncSnapshot) Load() *Snapshot { return c.p.Load() }

// rebuildMinOps is the ring-window length below which the committer never
// swaps the base — tiny fleets would otherwise rebase every commit.
const rebuildMinOps = 64

// cloneFallbackFactor scales the clone-fallback threshold relative to the
// adoption threshold: the committer only pays an O(fleet) clone when the
// window has outgrown the fleet itself and no reader materialisation is
// available to adopt (nobody is reading snapshots, so nobody pays replay
// either — the clone just bounds ring memory).
const cloneFallbackFactor = 4

// publish refreshes the committer's snapshot cell after a commit (and once at
// construction). When the ring window outgrows max(rebuildMinOps, fleet/2)
// the committer prefers *adopting* the latest snapshot's reader-materialised
// placement as the new base — O(1), no copying, sound because the
// materialisation is exactly base+window at that snapshot's position and its
// epoch proves the lineage. The O(fleet) live-placement clone survives only
// as a fallback at cloneFallbackFactor× the threshold, for services nobody
// reads. Old snapshots keep their chunks alive; nothing is truncated.
func (s *Service) publish() {
	live := s.online.Placement()
	s.stats.Version = s.stats.Commits
	s.stats.VMs = live.NumVMs()
	s.stats.UsedPMs = live.NumUsedPMs()
	if limit := max(rebuildMinOps, live.NumVMs()/2); s.ring.count > limit {
		if prev := s.snap.Load(); prev != nil && prev.epoch == s.ring.epoch &&
			prev.count > 0 && prev.matReady.Load() && prev.matErr == nil {
			s.base = prev.mat
			s.ring.adopt(prev)
			if s.metrics != nil {
				s.metrics.adoptions.Inc()
			}
		}
		if s.ring.count > cloneFallbackFactor*limit {
			s.base = live.Clone()
			s.ring.rebase()
			if s.metrics != nil {
				s.metrics.rebuilds.Inc()
			}
		}
	}
	snap := &Snapshot{
		stats:    s.stats,
		table:    s.online.Table(),
		base:     s.base,
		slots:    s.slots,
		head:     s.ring.head,
		skip:     s.ring.skip,
		count:    s.ring.count,
		epoch:    s.ring.epoch,
		endChunk: s.ring.tail,
		endOff:   s.ring.tail.n,
	}
	s.snap.p.Store(snap)
	if m := s.metrics; m != nil {
		m.version.Set(float64(s.stats.Version))
		m.vms.Set(float64(s.stats.VMs))
		m.usedPMs.Set(float64(s.stats.UsedPMs))
	}
}
