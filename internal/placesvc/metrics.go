package placesvc

import (
	"repro/internal/admission"
	"repro/internal/telemetry"
)

// svcMetrics bundles the placesvc_* instruments. A nil *svcMetrics disables
// instrumentation; call sites guard with one pointer check.
type svcMetrics struct {
	placements   *telemetry.Counter // placesvc_placements_total
	rejections   *telemetry.Counter // placesvc_rejections_total
	departures   *telemetry.Counter // placesvc_departures_total
	requests     *telemetry.Counter // placesvc_requests_total
	commits      *telemetry.Counter // placesvc_commits_total
	refreshes    *telemetry.Counter // placesvc_table_refreshes_total
	rebuilds     *telemetry.Counter // placesvc_snapshot_rebuilds_total
	adoptions    *telemetry.Counter // placesvc_snapshot_adoptions_total
	batchSize    *telemetry.Histogram
	queueLatency *telemetry.Timer
	queueDepth   *telemetry.Gauge
	vms          *telemetry.Gauge
	usedPMs      *telemetry.Gauge
	version      *telemetry.Gauge

	// Admission-layer backpressure instruments, registered only when the
	// service carries a policy (policyName != ""). sheds indexes by
	// admission.Class.
	sheds         []*telemetry.Counter // admission_sheds_total{policy,class}
	admQueueDepth *telemetry.Gauge     // admission_queue_depth
	shedEwma      *telemetry.Gauge     // admission_shed_rate_ewma
}

// batchSizeBuckets cover the MaxBatch range in powers of two.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

func newSvcMetrics(reg *telemetry.Registry, policyName string) *svcMetrics {
	if reg == nil {
		return nil
	}
	for family, text := range map[string]string{
		"placesvc_placements_total":         "VMs admitted and placed.",
		"placesvc_rejections_total":         "VM arrivals rejected for lack of capacity.",
		"placesvc_departures_total":         "VMs departed.",
		"placesvc_requests_total":           "Requests committed, all kinds.",
		"placesvc_commits_total":            "Batches committed.",
		"placesvc_table_refreshes_total":    "Applied mapping-table refreshes.",
		"placesvc_snapshot_rebuilds_total":  "Snapshot base re-clones (fallback: op ring outgrew the fleet with no reader materialisation to adopt).",
		"placesvc_snapshot_adoptions_total": "Reader-materialised snapshots adopted as the new base (the clone-free rebase path).",
		"placesvc_batch_size":               "Requests coalesced per commit.",
		"placesvc_queue_latency_seconds":    "Submit-to-commit-pickup latency (cumulative histogram).",
		"placesvc_queue_depth":              "Queued requests at last commit.",
		"placesvc_vms":                      "VMs in the fleet as of the latest snapshot.",
		"placesvc_used_pms":                 "PMs hosting at least one VM.",
		"placesvc_snapshot_version":         "Commit number of the published snapshot.",
	} {
		reg.Help(family, text)
	}
	m := &svcMetrics{
		placements:   reg.Counter("placesvc_placements_total"),
		rejections:   reg.Counter("placesvc_rejections_total"),
		departures:   reg.Counter("placesvc_departures_total"),
		requests:     reg.Counter("placesvc_requests_total"),
		commits:      reg.Counter("placesvc_commits_total"),
		refreshes:    reg.Counter("placesvc_table_refreshes_total"),
		rebuilds:     reg.Counter("placesvc_snapshot_rebuilds_total"),
		adoptions:    reg.Counter("placesvc_snapshot_adoptions_total"),
		batchSize:    reg.Histogram("placesvc_batch_size", batchSizeBuckets),
		queueLatency: reg.Timer("placesvc_queue_latency_seconds"),
		queueDepth:   reg.Gauge("placesvc_queue_depth"),
		vms:          reg.Gauge("placesvc_vms"),
		usedPMs:      reg.Gauge("placesvc_used_pms"),
		version:      reg.Gauge("placesvc_snapshot_version"),
	}
	if policyName != "" {
		reg.Help("admission_sheds_total", "VMs shed by the admission policy, by policy and class.")
		reg.Help("admission_queue_depth", "Committer queue depth as observed at the latest admission decision.")
		reg.Help("admission_shed_rate_ewma", "EWMA of the per-decision shed fraction (α = 1/64).")
		m.sheds = make([]*telemetry.Counter, len(admission.Classes))
		for i, class := range admission.Classes {
			m.sheds[i] = reg.Counter(telemetry.WithLabels("admission_sheds_total",
				"policy", policyName, "class", class.String()))
		}
		m.admQueueDepth = reg.Gauge("admission_queue_depth")
		m.shedEwma = reg.Gauge("admission_shed_rate_ewma")
	}
	return m
}
