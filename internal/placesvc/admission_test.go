package placesvc

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestServeEquivalenceNoOpPolicy extends the MaxBatch=1 ≡ sequential-Online
// contract across the admission layer: a service carrying an empty admission
// config (the no-op policy) and background contexts must reproduce the
// sequential core.Online placement bit-identically — the admission layer is
// invisible until a policy or a live context is actually in play.
func TestServeEquivalenceNoOpPolicy(t *testing.T) {
	strategy := paperStrategy()
	pms := mkPool(20, 100)
	svc := newServiceT(t, Config{Strategy: strategy, PMs: pms, MaxBatch: 1, Admission: &admission.Config{}})
	seq, err := core.NewOnline(strategy, pms, 0.01, 0.09)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	rng := rand.New(rand.NewSource(77))
	live := []int{}
	for step := 0; step < 400; step++ {
		switch {
		case rng.Float64() < 0.25 && len(live) > 0:
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			errSvc := svc.DepartCtx(ctx, id)
			errSeq := seq.Depart(id)
			if (errSvc == nil) != (errSeq == nil) {
				t.Fatalf("step %d: depart(%d) svc err %v, seq err %v", step, id, errSvc, errSeq)
			}
		default:
			vm := mkVM(step, 2+30*rng.Float64(), 2+18*rng.Float64())
			pmSvc, errSvc := svc.ArriveCtx(ctx, vm)
			pmSeq, errSeq := seq.Arrive(vm)
			if (errSvc == nil) != (errSeq == nil) {
				t.Fatalf("step %d: arrive(%d) svc err %v, seq err %v", step, vm.ID, errSvc, errSeq)
			}
			if errSvc != nil {
				if !errors.Is(errSvc, cloud.ErrNoCapacity) {
					t.Fatalf("step %d: rejection not ErrNoCapacity: %v", step, errSvc)
				}
				continue
			}
			if pmSvc != pmSeq {
				t.Fatalf("step %d: VM %d placed on PM %d by service, PM %d by sequential Online", step, vm.ID, pmSvc, pmSeq)
			}
			live = append(live, vm.ID)
		}
	}
	got, err := svc.Snapshot().Placement()
	if err != nil {
		t.Fatal(err)
	}
	assertSamePlacement(t, got, seq.Placement())
}

func TestArriveCtxAlreadyCancelled(t *testing.T) {
	svc := newServiceT(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.ArriveCtx(ctx, mkVM(1, 10, 5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := svc.DepartCtx(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("depart err = %v, want context.Canceled", err)
	}
	if _, err := svc.ArriveBatchCtx(ctx, []cloud.VM{mkVM(2, 10, 5)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	if got := svc.Stats().Placed; got != 0 {
		t.Fatalf("Placed = %d after cancelled submissions, want 0", got)
	}
}

// TestArriveCtxCancelWhileQueued pins the commit-skip contract: a waiter
// whose context fires while its request sits in the committer's collect
// window gets ctx.Err() back, and the request is skipped at commit time —
// never applied.
func TestArriveCtxCancelWhileQueued(t *testing.T) {
	// A long MaxWait parks the first request in the collect window, leaving
	// the waiter ample time to abandon it; Close (via Cleanup) ends the
	// window early, so the test does not pay the full wait.
	svc := newServiceT(t, Config{MaxBatch: 64, MaxWait: 30 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := svc.ArriveCtx(ctx, mkVM(1, 10, 5))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the committer pick the request up
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled waiter hung")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Placed != 0 {
		t.Fatalf("Placed = %d, want 0 — the abandoned request was applied", st.Placed)
	}
}

// TestDeadlineFromConfig checks the per-class default deadlines: with a
// 20ms standard deadline and a committer parked in a long collect window,
// a plain Arrive times out with context.DeadlineExceeded and is never
// applied, while a critical-class arrival (deadline 0 = none) commits.
func TestDeadlineFromConfig(t *testing.T) {
	svc := newServiceT(t, Config{
		MaxBatch:  64,
		MaxWait:   30 * time.Second,
		Admission: &admission.Config{Deadlines: &admission.DeadlineConfig{StandardMs: 20}},
	})
	if _, err := svc.Arrive(mkVM(1, 10, 5)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// A context with its own (longer) deadline overrides the class default.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := svc.ArriveCtx(ctx, mkVM(2, 10, 5))
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("caller deadline ignored: returned early with %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	if err := svc.Close(); err != nil { // drains: the queued arrival commits
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("queued arrival after Close: %v", err)
	}
	if st := svc.Stats(); st.Placed != 1 {
		t.Fatalf("Placed = %d, want exactly the non-expired arrival", st.Placed)
	}
}

func TestAdmissionShedTokenBucket(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := newServiceT(t, Config{
		Registry:  reg,
		Admission: &admission.Config{TokenBucket: &admission.TokenBucketConfig{Capacity: 1, RefillPerSec: 1e-9}},
	})
	if _, err := svc.Arrive(mkVM(1, 10, 5)); err != nil {
		t.Fatalf("first arrival: %v", err)
	}
	_, err := svc.Arrive(mkVM(2, 10, 5))
	if !errors.Is(err, admission.ErrShed) {
		t.Fatalf("err = %v, want admission.ErrShed", err)
	}
	if errors.Is(err, cloud.ErrNoCapacity) {
		t.Fatalf("shed error %v must not wrap ErrNoCapacity", err)
	}
	// Critical bypasses the bucket by default.
	if _, err := svc.ArriveClass(context.Background(), mkVM(3, 10, 5), admission.ClassCritical); err != nil {
		t.Fatalf("critical arrival: %v", err)
	}
	// A shed batch is charged whole and rejected before it queues.
	if _, err := svc.ArriveBatch([]cloud.VM{mkVM(4, 10, 5), mkVM(5, 10, 5)}); !errors.Is(err, admission.ErrShed) {
		t.Fatalf("batch err = %v, want admission.ErrShed", err)
	}

	shedStd := reg.Counter(telemetry.WithLabels("admission_sheds_total", "policy", "token_bucket", "class", "standard"))
	if got := shedStd.Value(); got != 3 { // 1 single + 2 batch VMs
		t.Fatalf("admission_sheds_total{standard} = %d, want 3", got)
	}
	if got := reg.Gauge("admission_shed_rate_ewma").Value(); got <= 0 {
		t.Fatalf("admission_shed_rate_ewma = %v, want > 0 after sheds", got)
	}
	if st := svc.Stats(); st.Placed != 2 || st.Rejected != 0 {
		t.Fatalf("stats = %+v — sheds must never reach the committer", st)
	}
}

func TestAdmissionOccupancyShed(t *testing.T) {
	strategy := paperStrategy()
	strategy.MaxVMsPerPM = 2 // 2 PMs × 2 slots: occupancy quantum 0.25
	svc := newServiceT(t, Config{
		Strategy: strategy,
		PMs:      mkPool(2, 1000),
		Admission: &admission.Config{
			Occupancy: &admission.OccupancyConfig{ShedAbove: 0.5, ResumeBelow: 0.25},
		},
	})
	for id := 0; id < 2; id++ {
		if _, err := svc.Arrive(mkVM(id, 5, 2)); err != nil {
			t.Fatalf("arrival %d: %v", id, err)
		}
	}
	// Occupancy is now 2/4 = 0.5 ≥ shed_above: standard arrivals shed.
	if _, err := svc.Arrive(mkVM(2, 5, 2)); !errors.Is(err, admission.ErrShed) {
		t.Fatalf("err at occupancy 0.5 = %v, want admission.ErrShed", err)
	}
	// Departures are never shed and free the fleet back below resume_below.
	for id := 0; id < 2; id++ {
		if err := svc.Depart(id); err != nil {
			t.Fatalf("depart %d: %v", id, err)
		}
	}
	if _, err := svc.Arrive(mkVM(3, 5, 2)); err != nil {
		t.Fatalf("arrival after drain: %v — hysteresis did not resume", err)
	}
}

// TestCloseDuringNoCapacityStorm is the Close-drain regression test: while a
// saturated fleet storms ErrNoCapacity across many clients — some with live
// contexts — Close must leave every waiter with a definitive answer
// (placement, ErrNoCapacity, ErrClosed, or its own ctx error), never a hang.
func TestCloseDuringNoCapacityStorm(t *testing.T) {
	strategy := paperStrategy()
	strategy.MaxVMsPerPM = 1
	svc := newServiceT(t, Config{Strategy: strategy, PMs: mkPool(1, 100), QueueCap: 8})
	if _, err := svc.Arrive(mkVM(0, 10, 5)); err != nil {
		t.Fatal(err)
	}

	const clients = 24
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			for i := 0; ; i++ {
				var err error
				if c%2 == 0 {
					_, err = svc.Arrive(mkVM(1000+c*10000+i, 10, 5))
				} else {
					_, err = svc.ArriveCtx(ctx, mkVM(1000+c*10000+i, 10, 5))
				}
				switch {
				case err == nil, errors.Is(err, cloud.ErrNoCapacity):
					// Storm continues; keep hammering until the service closes.
				case errors.Is(err, ErrClosed), errors.Is(err, context.DeadlineExceeded):
					return
				default:
					t.Errorf("client %d: indefinitive answer %v", c, err)
					return
				}
				if i == 0 {
					select {
					case <-start:
					default:
						close(start)
					}
				}
			}
		}(c)
	}
	<-start                          // storm confirmed in flight
	time.Sleep(5 * time.Millisecond) // let the queue fill mid-storm
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("waiters hung across Close during an ErrNoCapacity storm")
	}
}

// TestDuplicateArriveRacesDepartBatch drives duplicate-id arrivals against a
// DepartBatch of the same ids so that, under MaxWait coalescing, all three
// requests land in one commit and exercise order()'s per-id FIFO re-link.
// Outcomes are interleaving-dependent; the invariants are: no hang, every
// error classified, and the id placed at most once afterwards. Run with
// -race (make race) for the data-race coverage this exists for.
func TestDuplicateArriveRacesDepartBatch(t *testing.T) {
	svc := newServiceT(t, Config{MaxBatch: 64, MaxWait: 10 * time.Millisecond})
	const id = 7
	for round := 0; round < 20; round++ {
		if _, err := svc.Arrive(mkVM(id, 10, 5)); err != nil {
			t.Fatalf("round %d: seed arrival: %v", round, err)
		}
		var wg sync.WaitGroup
		errs := make([]error, 3)
		oks := make([]bool, 2)
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				_, err := svc.Arrive(mkVM(id, 10, 5))
				errs[g] = err
				oks[g] = err == nil
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			missing, err := svc.DepartBatch([]int{id, id})
			errs[2] = err
			if err == nil && len(missing) == 2 {
				// Both ids missing means the VM was not placed at all —
				// impossible, the seed arrival committed first.
				t.Errorf("round %d: DepartBatch found the seeded VM missing twice", round)
			}
		}()
		wg.Wait()
		for i, err := range errs {
			if err != nil && errors.Is(err, cloud.ErrNoCapacity) {
				t.Fatalf("round %d: request %d rejected for capacity in an uncontended fleet: %v", round, i, err)
			}
		}
		// Reconcile: leave the fleet empty for the next round.
		if err := svc.Depart(id); err != nil {
			// Not placed now — every arrival either failed or was departed.
			if oks[0] && oks[1] {
				t.Fatalf("round %d: both duplicate arrivals reported success yet VM absent", round)
			}
		} else if svcStats := svc.Stats(); svcStats.VMs != 0 {
			t.Fatalf("round %d: fleet not empty after reconcile: %+v", round, svcStats)
		}
	}
}

// TestAdmissionConfigValidationAtNew ensures a bad policy config fails
// service construction instead of silently admitting everything.
func TestAdmissionConfigValidationAtNew(t *testing.T) {
	_, err := New(Config{
		Strategy:  paperStrategy(),
		PMs:       mkPool(1, 100),
		POn:       0.01,
		POff:      0.09,
		Admission: &admission.Config{TokenBucket: &admission.TokenBucketConfig{Capacity: 0, RefillPerSec: 1}},
	})
	if err == nil {
		t.Fatal("invalid admission config accepted")
	}
}

// TestShedDecisionsDeterministic pins the shed-determinism contract at the
// service level: two services compiled from the same policy config, fed the
// same single-client sequence with the same virtual occupancy trajectory,
// shed the same requests. (Wall-clock token buckets are excluded here — the
// occupancy gate is the clockless policy — the policy-layer determinism test
// in internal/admission covers timestamped replay.)
func TestShedDecisionsDeterministic(t *testing.T) {
	run := func() []bool {
		strategy := paperStrategy()
		strategy.MaxVMsPerPM = 2
		svc := newServiceT(t, Config{
			Strategy: strategy,
			PMs:      mkPool(4, 1000),
			Admission: &admission.Config{
				Occupancy: &admission.OccupancyConfig{ShedAbove: 0.5, ResumeBelow: 0.25},
			},
		})
		rng := rand.New(rand.NewSource(13))
		live := []int{}
		var decisions []bool
		for step := 0; step < 300; step++ {
			if rng.Float64() < 0.4 && len(live) > 0 {
				i := rng.Intn(len(live))
				if err := svc.Depart(live[i]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			_, err := svc.Arrive(mkVM(step, 5, 2))
			shed := errors.Is(err, admission.ErrShed)
			if err != nil && !shed {
				t.Fatalf("step %d: %v", step, err)
			}
			if err == nil {
				live = append(live, step)
			}
			decisions = append(decisions, shed)
		}
		return decisions
	}
	a, b := run(), run()
	sheds := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged across identical runs", i)
		}
		if a[i] {
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatal("trajectory never shed — determinism check vacuous")
	}
}

// TestArriveMigratedBypassesAdmission pins the internal migration path's
// contract: ArriveMigrated ignores the admission policy entirely — it is the
// re-arrival half of a shard-to-shard move, already-admitted capacity that a
// shed would evict — and stays out of client-stream accounting: a
// capacity-refused migration returns ErrNoCapacity without counting toward
// Stats.Rejected (the migration layer keeps its own failure tally).
func TestArriveMigratedBypassesAdmission(t *testing.T) {
	svc := newServiceT(t, Config{
		PMs: mkPool(1, 1000),
		Admission: &admission.Config{
			Occupancy: &admission.OccupancyConfig{ShedAbove: 0.1, ResumeBelow: 0.05},
		},
	})
	// Two critical arrivals ride through the gate (ShedCritical off) and push
	// occupancy to 2/16 = 0.125 — past ShedAbove, arming it.
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := svc.ArriveClass(ctx, mkVM(i, 1, 1), admission.ClassCritical); err != nil {
			t.Fatalf("critical fill %d: %v", i, err)
		}
	}
	if _, err := svc.Arrive(mkVM(100, 1, 1)); !errors.Is(err, admission.ErrShed) {
		t.Fatalf("standard arrival err = %v, want ErrShed", err)
	}
	// Migrations land regardless of the armed gate, all the way to capacity.
	for i := 2; i < 16; i++ {
		if _, err := svc.ArriveMigrated(mkVM(i, 1, 1)); err != nil {
			t.Fatalf("migration %d: %v", i, err)
		}
	}
	// The pool is full: one more migration is refused on capacity — a real
	// ErrNoCapacity to its caller, invisible to the rejection counters.
	if _, err := svc.ArriveMigrated(mkVM(200, 1, 1)); !errors.Is(err, cloud.ErrNoCapacity) {
		t.Fatalf("migration into full pool err = %v, want ErrNoCapacity", err)
	}
	st := svc.Stats()
	if st.VMs != 16 {
		t.Fatalf("fleet holds %d VMs, want 16", st.VMs)
	}
	if st.Rejected != 0 {
		t.Fatalf("Stats.Rejected = %d after a refused migration, want 0", st.Rejected)
	}
	if st.Placed != 16 {
		t.Fatalf("Stats.Placed = %d, want 16", st.Placed)
	}
}
