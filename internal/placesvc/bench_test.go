package placesvc

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/obs"
)

// benchObs returns the obs plane the admission benchmarks attach: nil by
// default, a full plane when OBS_BENCH is set. Bench names stay identical so
// benchdiff can diff the obs-off vs obs-on snapshots (make bench-pr6).
func benchObs(b *testing.B) *obs.Plane {
	if os.Getenv("OBS_BENCH") == "" {
		return nil
	}
	p := obs.NewPlane(obs.Options{})
	b.Cleanup(func() { p.Close() })
	return p
}

// serveBenchM mirrors the core scale sweep: 1k PMs by default, the
// 1k/10k/100k ladder under SCALE_BENCH_FULL=1.
func serveBenchM() []int {
	if os.Getenv("SCALE_BENCH_FULL") != "" {
		return []int{1_000, 10_000, 100_000}
	}
	return []int{1_000}
}

// benchWindow is each client's live-VM window: one admission per op, with the
// oldest VM departing once the window fills, so the fleet reaches a steady
// state instead of monotonically filling the pool.
const benchWindow = 64

func benchClientOps(svc *Service, b *testing.B, client, ops int) {
	window := make([]int, 0, benchWindow)
	base := (client + 1) * 1_000_000_000
	for i := 0; i < ops; i++ {
		if len(window) == benchWindow {
			if err := svc.Depart(window[0]); err != nil {
				b.Errorf("client %d: depart: %v", client, err)
				return
			}
			copy(window, window[1:])
			window = window[:benchWindow-1]
		}
		id := base + i
		if _, err := svc.Arrive(mkVM(id, 5, 3)); err != nil {
			if errors.Is(err, cloud.ErrNoCapacity) {
				continue
			}
			b.Errorf("client %d: arrive: %v", client, err)
			return
		}
		window = append(window, id)
	}
}

// BenchmarkServeAdmit measures concurrent admission throughput through the
// group-commit service: b.N arrive ops (with window departures) split across
// 1, 4 and 16 client goroutines. Compare against BenchmarkSerialAdmit for the
// concurrency speedup; on a single-core box the service can at best tie the
// serial loop (and pays the queue hop), so the ≥4× target needs a multi-core
// runner.
func BenchmarkServeAdmit(b *testing.B) {
	for _, m := range serveBenchM() {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("m=%d/clients=%d", m, clients), func(b *testing.B) {
				svc, err := New(Config{
					Strategy: paperStrategy(),
					PMs:      mkPool(m, 100),
					POn:      0.01,
					POff:     0.09,
					// Track the -cpu matrix level: each GOMAXPROCS level
					// measures the committer fanned out over that many
					// workers, the deployment default.
					Workers: runtime.GOMAXPROCS(0),
					Obs:     benchObs(b),
				})
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Close()
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					ops := b.N / clients
					if c < b.N%clients {
						ops++
					}
					if ops == 0 {
						continue
					}
					wg.Add(1)
					go func(c, ops int) {
						defer wg.Done()
						benchClientOps(svc, b, c, ops)
					}(c, ops)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkSerialAdmit is the sequential baseline: the same windowed workload
// applied straight to core.Online, no queue, no committer, no snapshots.
func BenchmarkSerialAdmit(b *testing.B) {
	for _, m := range serveBenchM() {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			online, err := core.NewOnline(paperStrategy(), mkPool(m, 100), 0.01, 0.09)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			window := make([]int, 0, benchWindow)
			for i := 0; i < b.N; i++ {
				if len(window) == benchWindow {
					if err := online.Depart(window[0]); err != nil {
						b.Fatal(err)
					}
					copy(window, window[1:])
					window = window[:benchWindow-1]
				}
				if _, err := online.Arrive(mkVM(i, 5, 3)); err != nil {
					if errors.Is(err, cloud.ErrNoCapacity) {
						continue
					}
					b.Fatal(err)
				}
				window = append(window, i)
			}
		})
	}
}

// BenchmarkBatchApply measures one committed churn cycle — a 1024-VM batched
// departure, the same VMs batch-arriving back, and a table refresh — as a
// function of Config.Workers. The departure rescore and the post-refresh
// index rebuild are the committer phases that fan out over workers; arrivals
// stay sequential by contract. On a single-core box every workers level
// degenerates to the sequential walk (the fan-out helper collapses to one
// range), so cross-level deltas only mean something on a multi-core runner.
func BenchmarkBatchApply(b *testing.B) {
	const m = 4096
	const batch = 1024
	vms := make([]cloud.VM, batch)
	ids := make([]int, batch)
	for i := range vms {
		vms[i] = mkVM(i, 5, 3)
		ids[i] = i
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("m=%d/batch=%d/workers=%d", m, batch, workers), func(b *testing.B) {
			svc, err := New(Config{
				Strategy: paperStrategy(),
				PMs:      mkPool(m, 100),
				POn:      0.01,
				POff:     0.09,
				Workers:  workers,
				Obs:      benchObs(b),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			if _, err := svc.ArriveBatch(vms); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if missing, err := svc.DepartBatch(ids); err != nil || len(missing) != 0 {
					b.Fatalf("depart: %v (missing %d)", err, len(missing))
				}
				if unplaced, err := svc.ArriveBatch(vms); err != nil || len(unplaced) != 0 {
					b.Fatalf("arrive: %v (unplaced %d)", err, len(unplaced))
				}
				if err := svc.RefreshTable(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
