package placesvc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cloud"
)

// workersScript drives one service through a fixed request sequence from a
// single goroutine — awaiting every response, so commit order equals
// submission order — and returns the final placement (VM id → PM id) plus
// stats. The sequence mixes single and batched arrivals and departures with
// periodic table refreshes so every parallelised committer path runs:
// deferred departure rescores, the whole-index refresh rebuild, and the
// Algorithm-2-ordered arrival phase.
func workersScript(t *testing.T, workers, pms int, pmCap float64) (map[int]int, Stats) {
	t.Helper()
	svc := newServiceT(t, Config{
		PMs:      mkPool(pms, pmCap),
		MaxBatch: 64,
		Workers:  workers,
	})
	rng := rand.New(rand.NewSource(7))
	live := map[int]bool{}
	next := 0
	newVM := func() cloud.VM {
		id := next
		next++
		return mkVM(id, 0.5+rng.Float64(), 1+rng.Float64()*3)
	}
	for round := 0; round < 40; round++ {
		// A burst of batched arrivals.
		var vms []cloud.VM
		for i := 0; i < 5+rng.Intn(20); i++ {
			vms = append(vms, newVM())
		}
		unplaced, err := svc.ArriveBatch(vms)
		if err != nil {
			t.Fatal(err)
		}
		rejected := map[int]bool{}
		for _, vm := range unplaced {
			rejected[vm.ID] = true
		}
		for _, vm := range vms {
			if !rejected[vm.ID] {
				live[vm.ID] = true
			}
		}
		// Single arrivals, tolerating pool exhaustion in the storm variant.
		for i := 0; i < rng.Intn(4); i++ {
			vm := newVM()
			if _, err := svc.Arrive(vm); err == nil {
				live[vm.ID] = true
			} else if !errors.Is(err, cloud.ErrNoCapacity) {
				t.Fatal(err)
			}
		}
		// A batched departure of a deterministic subset of the fleet —
		// the parallel rescore path — plus one unknown id.
		var departs []int
		for id := 0; id < next; id++ {
			if live[id] && rng.Intn(4) == 0 {
				departs = append(departs, id)
				delete(live, id)
			}
		}
		departs = append(departs, 1_000_000+round) // never placed
		missing, err := svc.DepartBatch(departs)
		if err != nil {
			t.Fatal(err)
		}
		if len(missing) != 1 || missing[0] != 1_000_000+round {
			t.Fatalf("round %d: missing = %v, want exactly the unknown id", round, missing)
		}
		// Periodic refresh: the parallel whole-index rebuild.
		if round%5 == 4 {
			if err := svc.RefreshTable(); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := svc.Snapshot()
	p, err := snap.Placement()
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int{}
	for _, vm := range p.VMs() {
		pmID, ok := p.PMOf(vm.ID)
		if !ok {
			t.Fatalf("VM %d in VMs() but PMOf misses it", vm.ID)
		}
		got[vm.ID] = pmID
	}
	return got, snap.Stats()
}

// TestCommitWorkersInvariance is the determinism contract of Config.Workers:
// for one committed request sequence, every worker count yields bit-identical
// placements and stats — the parallel fan-out only reorders score
// computation, never the committed state. Runs plain and under an
// ErrNoCapacity storm (a pool too small for the fleet, so arrivals reject
// mid-batch and departures free fragmented capacity).
func TestCommitWorkersInvariance(t *testing.T) {
	for _, tc := range []struct {
		name  string
		pms   int
		pmCap float64
	}{
		{"plain", 400, 100},
		// A few dozen VM slots against ~700 arrivals: most of the run is an
		// ErrNoCapacity storm, with departures freeing fragmented slots.
		{"nocapacity-storm", 5, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			refPlace, refStats := workersScript(t, 1, tc.pms, tc.pmCap)
			if tc.name == "nocapacity-storm" && refStats.Rejected == 0 {
				t.Fatal("storm variant rejected nothing; the pool is too roomy to exercise ErrNoCapacity")
			}
			for _, workers := range []int{2, 8} {
				place, stats := workersScript(t, workers, tc.pms, tc.pmCap)
				if stats != refStats {
					t.Errorf("Workers=%d stats = %+v, want the Workers=1 stats %+v", workers, stats, refStats)
				}
				if len(place) != len(refPlace) {
					t.Fatalf("Workers=%d placed %d VMs, Workers=1 placed %d", workers, len(place), len(refPlace))
				}
				for vmID, pmID := range refPlace {
					if got, ok := place[vmID]; !ok || got != pmID {
						t.Fatalf("Workers=%d: VM %d on PM %d, want PM %d (first divergence)", workers, vmID, got, pmID)
					}
				}
			}
		})
	}
}

// TestWorkersConcurrentChurn exercises the parallel committer under
// concurrent Arrive/Depart/RefreshTable clients at several worker counts.
// Interleaving is scheduling-dependent, so there is no cross-run bit-identity
// to assert; what must hold at every worker count — and under the race
// detector — is that each committed snapshot is internally consistent and
// the final fleet accounts for every client's outcome.
func TestWorkersConcurrentChurn(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			svc := newServiceT(t, Config{
				PMs:      mkPool(60, 3), // small: ErrNoCapacity storms under churn
				MaxBatch: 32,
				Workers:  workers,
			})
			var placed, rejected, departed atomicCounter
			var wg sync.WaitGroup
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < 300; i++ {
						id := c*10_000 + i
						_, err := svc.Arrive(mkVM(id, 1, 2))
						switch {
						case err == nil:
							placed.inc()
						case errors.Is(err, cloud.ErrNoCapacity):
							rejected.inc()
						default:
							t.Errorf("arrive: %v", err)
							return
						}
						if err == nil && i%2 == 1 {
							if err := svc.Depart(id); err != nil {
								t.Errorf("depart: %v", err)
								return
							}
							departed.inc()
						}
						if i%100 == 99 {
							if err := svc.RefreshTable(); err != nil {
								t.Errorf("refresh: %v", err)
								return
							}
						}
					}
				}(c)
			}
			wg.Wait()
			st := svc.Stats()
			if st.Placed != placed.n || st.Rejected != rejected.n || st.Departed != departed.n {
				t.Errorf("stats (placed %d, rejected %d, departed %d) != client view (%d, %d, %d)",
					st.Placed, st.Rejected, st.Departed, placed.n, rejected.n, departed.n)
			}
			p, err := svc.Snapshot().Placement()
			if err != nil {
				t.Fatal(err)
			}
			if want := int(placed.n - departed.n); p.NumVMs() != want {
				t.Errorf("final fleet holds %d VMs, want placed-departed = %d", p.NumVMs(), want)
			}
		})
	}
}

type atomicCounter struct {
	mu sync.Mutex
	n  uint64
}

func (c *atomicCounter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}
