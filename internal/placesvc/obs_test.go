package placesvc

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// TestServiceObsSpans drives admissions through a service with the full obs
// plane attached and checks every committer span lands in its rolling window:
// queue wait, batch apply, snapshot publish, plus the interarrival probe.
func TestServiceObsSpans(t *testing.T) {
	plane := obs.NewPlane(obs.Options{})
	defer plane.Close()
	svc := newServiceT(t, Config{Obs: plane})

	for i := 0; i < 32; i++ {
		if _, err := svc.Arrive(mkVM(i, 5, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Depart(0); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	for _, w := range []struct {
		name string
		win  *obs.WindowedTimer
	}{
		{"queue_wait", plane.QueueWait},
		{"batch_apply", plane.BatchApply},
		{"snapshot_publish", plane.SnapshotPublish},
	} {
		hs := w.win.Snapshot()
		if hs.Count == 0 {
			t.Errorf("%s window empty after 33 committed requests", w.name)
		}
		if q := w.win.Quantile(0.99); math.IsNaN(q) || q < 0 {
			t.Errorf("%s p99 = %v", w.name, q)
		}
	}

	// 32 arrivals fed the interarrival probe; the CV gauge must be defined.
	plane.RefreshGauges()
	snap := plane.Registry.Snapshot()
	cv, ok := snap.Gauges["obs_interarrival_cv"]
	if !ok || math.IsNaN(cv) || cv < 0 {
		t.Errorf("obs_interarrival_cv = %v (defined=%v), want a finite value ≥ 0", cv, ok)
	}
}

// TestServiceObsRejectionStorm fills a tiny pool until arrivals reject and
// requires the capacity-rejection storm to reach the flight recorder.
func TestServiceObsRejectionStorm(t *testing.T) {
	var dumps []obs.Dump
	plane := obs.NewPlane(obs.Options{
		StormThreshold: 4,
		OnDump:         func(d obs.Dump) { dumps = append(dumps, d) },
	})
	defer plane.Close()
	svc := newServiceT(t, Config{
		PMs: mkPool(1, 20), // fits ~3 VMs of Rb 5; the rest reject
		Obs: plane,
	})
	defer svc.Close()

	rejected := 0
	for i := 0; i < 32; i++ {
		_, err := svc.Arrive(mkVM(i, 5, 3))
		switch {
		case err == nil:
		case errors.Is(err, cloud.ErrNoCapacity):
			rejected++
		default:
			t.Fatal(err)
		}
	}
	if rejected < 4 {
		t.Fatalf("only %d rejections; pool sizing broke the storm setup", rejected)
	}
	found := false
	for _, d := range dumps {
		if d.Trigger == obs.TriggerStorm {
			found = true
		}
	}
	if !found {
		t.Fatalf("%d rejections produced no storm dump (dumps: %d)", rejected, len(dumps))
	}
}

// TestServiceObsOffNoEnqueueStamp confirms the zero-instrumentation path
// stays zero: with neither Registry nor Obs, requests carry no timestamps.
func TestServiceObsOffNoEnqueueStamp(t *testing.T) {
	svc := newServiceT(t, Config{})
	defer svc.Close()
	r := svc.get(reqArrive)
	r.vm = mkVM(1, 5, 3)
	if err := svc.submit(r); err != nil {
		t.Fatal(err)
	}
	if !r.enq.IsZero() {
		t.Fatal("enq stamped with instrumentation disabled")
	}
	svc.put(r)
}

// TestServiceObsMetricsValidExposition runs the service with both Registry
// and Obs on one registry and validates the combined scrape.
func TestServiceObsMetricsValidExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	plane := obs.NewPlane(obs.Options{Registry: reg})
	defer plane.Close()
	svc := newServiceT(t, Config{Registry: reg, Obs: plane})
	for i := 0; i < 8; i++ {
		if _, err := svc.Arrive(mkVM(i, 5, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	plane.RefreshGauges()
	out := reg.PrometheusString()
	if err := telemetry.ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("combined exposition invalid: %v\n%s", err, out)
	}
}
