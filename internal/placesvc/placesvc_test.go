package placesvc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/queuing"
	"repro/internal/telemetry"
)

func paperStrategy() core.QueuingFFD {
	return core.QueuingFFD{Rho: 0.01, MaxVMsPerPM: 16}
}

func mkVM(id int, rb, re float64) cloud.VM {
	return cloud.VM{ID: id, POn: 0.01, POff: 0.09, Rb: rb, Re: re}
}

func mkPool(n int, capacity float64) []cloud.PM {
	pms := make([]cloud.PM, n)
	for i := range pms {
		pms[i] = cloud.PM{ID: i, Capacity: capacity}
	}
	return pms
}

func newServiceT(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Strategy.MaxVMsPerPM == 0 {
		cfg.Strategy = paperStrategy()
	}
	if cfg.PMs == nil {
		cfg.PMs = mkPool(50, 100)
	}
	if cfg.POn == 0 {
		cfg.POn, cfg.POff = 0.01, 0.09
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{PMs: mkPool(1, 100), POn: 0.01, POff: 0.09}); err == nil {
		t.Error("missing MaxVMsPerPM accepted")
	}
	if _, err := New(Config{Strategy: paperStrategy(), PMs: mkPool(1, 100), POn: 0.01, POff: 0.09, MaxBatch: -1}); err == nil {
		t.Error("negative MaxBatch accepted")
	}
	if _, err := New(Config{Strategy: paperStrategy(), PMs: mkPool(1, 100), POn: 0.01, POff: 0.09, MaxWait: -time.Second}); err == nil {
		t.Error("negative MaxWait accepted")
	}
	if _, err := New(Config{Strategy: paperStrategy(), PMs: mkPool(1, 100), POn: 0.01, POff: 0.09, QueueCap: -1}); err == nil {
		t.Error("negative QueueCap accepted")
	}
	bad := paperStrategy()
	bad.Method = core.ClusterMethod(99)
	if _, err := New(Config{Strategy: bad, PMs: mkPool(1, 100), POn: 0.01, POff: 0.09}); err == nil {
		t.Error("unknown cluster method accepted")
	}
}

// The MaxBatch = 1 ≡ sequential-Online equivalence contract: a fixed request
// arrival order submitted by a single client through a MaxBatch = 1 service
// must reproduce the sequential core.Online placement bit-identically — the
// same PM id for every arrival, the same error classification, the same
// final placement. Same contract style as TestPlacerEquivalence and
// TestShardCountInvariance.
func TestServeEquivalenceMaxBatch1(t *testing.T) {
	for _, placer := range []core.Placer{core.PlacerIndexed, core.PlacerLinear} {
		t.Run(fmt.Sprintf("placer=%d", placer), func(t *testing.T) {
			strategy := paperStrategy()
			strategy.Placer = placer
			pms := mkPool(20, 100)
			svc := newServiceT(t, Config{Strategy: strategy, PMs: pms, MaxBatch: 1})
			seq, err := core.NewOnline(strategy, pms, 0.01, 0.09)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(77))
			live := []int{}
			for step := 0; step < 400; step++ {
				switch {
				case rng.Float64() < 0.25 && len(live) > 0:
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					errSvc := svc.Depart(id)
					errSeq := seq.Depart(id)
					if (errSvc == nil) != (errSeq == nil) {
						t.Fatalf("step %d: depart(%d) svc err %v, seq err %v", step, id, errSvc, errSeq)
					}
				default:
					vm := mkVM(step, 2+30*rng.Float64(), 2+18*rng.Float64())
					pmSvc, errSvc := svc.Arrive(vm)
					pmSeq, errSeq := seq.Arrive(vm)
					if (errSvc == nil) != (errSeq == nil) {
						t.Fatalf("step %d: arrive(%d) svc err %v, seq err %v", step, vm.ID, errSvc, errSeq)
					}
					if errSvc != nil {
						if !errors.Is(errSvc, cloud.ErrNoCapacity) || !errors.Is(errSeq, cloud.ErrNoCapacity) {
							t.Fatalf("step %d: rejection not ErrNoCapacity: svc %v, seq %v", step, errSvc, errSeq)
						}
						continue
					}
					if pmSvc != pmSeq {
						t.Fatalf("step %d: VM %d placed on PM %d by service, PM %d by sequential Online", step, vm.ID, pmSvc, pmSeq)
					}
					live = append(live, vm.ID)
				}
			}

			got, err := svc.Snapshot().Placement()
			if err != nil {
				t.Fatal(err)
			}
			assertSamePlacement(t, got, seq.Placement())
		})
	}
}

// ArriveBatch through a MaxBatch = 1 service matches Online.ArriveBatch:
// same unplaced set, same final placement.
func TestServeBatchEquivalence(t *testing.T) {
	strategy := paperStrategy()
	pms := mkPool(3, 60)
	svc := newServiceT(t, Config{Strategy: strategy, PMs: pms, MaxBatch: 1})
	seq, err := core.NewOnline(strategy, pms, 0.01, 0.09)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	batch := make([]cloud.VM, 24)
	for i := range batch {
		batch[i] = mkVM(i, 2+18*rng.Float64(), 2+18*rng.Float64())
	}
	unSvc, err := svc.ArriveBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	unSeq, err := seq.ArriveBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(unSvc) != len(unSeq) {
		t.Fatalf("service left %d unplaced, sequential %d", len(unSvc), len(unSeq))
	}
	for i := range unSvc {
		if unSvc[i].ID != unSeq[i].ID {
			t.Errorf("unplaced[%d]: id %d vs %d", i, unSvc[i].ID, unSeq[i].ID)
		}
	}
	got, err := svc.Snapshot().Placement()
	if err != nil {
		t.Fatal(err)
	}
	assertSamePlacement(t, got, seq.Placement())
}

func assertSamePlacement(t *testing.T, got, want *cloud.Placement) {
	t.Helper()
	if got.NumVMs() != want.NumVMs() {
		t.Fatalf("placement holds %d VMs, want %d", got.NumVMs(), want.NumVMs())
	}
	for _, vm := range want.VMs() {
		wantPM, _ := want.PMOf(vm.ID)
		gotPM, ok := got.PMOf(vm.ID)
		if !ok || gotPM != wantPM {
			t.Fatalf("VM %d on PM %d (ok=%v), want PM %d", vm.ID, gotPM, ok, wantPM)
		}
	}
}

// ArriveBatch keeps the Online contract after the PR-5 bugfix: a real error
// (duplicate VM id failing Assign) aborts the batch instead of landing the
// VM in unplaced.
func TestServeBatchAbortsOnRealError(t *testing.T) {
	svc := newServiceT(t, Config{MaxBatch: 1})
	if _, err := svc.Arrive(mkVM(7, 10, 5)); err != nil {
		t.Fatal(err)
	}
	unplaced, err := svc.ArriveBatch([]cloud.VM{mkVM(1, 10, 5), mkVM(7, 10, 5)})
	if err == nil {
		t.Fatal("batch with duplicate VM id did not abort")
	}
	if errors.Is(err, cloud.ErrNoCapacity) {
		t.Errorf("abort error %v wrongly wraps ErrNoCapacity", err)
	}
	if unplaced != nil {
		t.Errorf("aborted batch returned unplaced = %v", unplaced)
	}
}

// Concurrent clients hammering arrivals, departures, refreshes and snapshot
// reads: every committed state satisfies Eq. (17), every Arrive response
// names a PM that really hosts the VM at some subsequent snapshot, and the
// final fleet reconciles with the per-client accounting. Run under -race in
// CI (make race).
func TestServeConcurrentChurn(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := newServiceT(t, Config{PMs: mkPool(100, 100), MaxBatch: 32, Registry: reg})
	const clients = 8
	const opsPerClient = 150

	var wg sync.WaitGroup
	placedCounts := make([]int, clients)
	departedCounts := make([]int, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			mine := []int{}
			for i := 0; i < opsPerClient; i++ {
				if rng.Float64() < 0.3 && len(mine) > 0 {
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := svc.Depart(id); err != nil {
						t.Errorf("client %d: depart(%d): %v", c, id, err)
						return
					}
					departedCounts[c]++
					continue
				}
				id := c*100000 + i
				vm := mkVM(id, 2+18*rng.Float64(), 2+18*rng.Float64())
				pmID, err := svc.Arrive(vm)
				if err != nil {
					if !errors.Is(err, cloud.ErrNoCapacity) {
						t.Errorf("client %d: arrive(%d): %v", c, id, err)
						return
					}
					continue
				}
				if pmID < 0 || pmID >= 100 {
					t.Errorf("client %d: VM %d placed on out-of-pool PM %d", c, id, pmID)
					return
				}
				placedCounts[c]++
				mine = append(mine, id)
			}
		}(c)
	}
	// A monitoring reader racing the clients: snapshots must always be
	// internally consistent and never violate Eq. (17).
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := svc.Snapshot()
			p, err := snap.Placement()
			if err != nil {
				t.Errorf("snapshot materialisation: %v", err)
				return
			}
			if p.NumVMs() != snap.Stats().VMs {
				t.Errorf("snapshot v%d: placement holds %d VMs, stats say %d", snap.Version(), p.NumVMs(), snap.Stats().VMs)
				return
			}
			if v := cloud.CheckReserved(p, snap.Table()); v != nil {
				t.Errorf("snapshot v%d violates Eq. (17): %v", snap.Version(), v)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if err := svc.RefreshTable(); err != nil {
		t.Fatal(err)
	}
	wantLive := 0
	for c := 0; c < clients; c++ {
		wantLive += placedCounts[c] - departedCounts[c]
	}
	final := svc.Snapshot()
	if got := final.Stats().VMs; got != wantLive {
		t.Errorf("final fleet holds %d VMs, client accounting says %d", got, wantLive)
	}
	p, err := final.Placement()
	if err != nil {
		t.Fatal(err)
	}
	if v := cloud.CheckReserved(p, final.Table()); v != nil {
		t.Errorf("final snapshot violates Eq. (17): %v", v)
	}
	if got := reg.Counter("placesvc_placements_total").Value(); got != uint64(wantLive)+uint64(sum(departedCounts)) {
		t.Errorf("placements counter = %d, want %d", got, wantLive+sum(departedCounts))
	}
	if got := reg.Counter("placesvc_commits_total").Value(); got == 0 || got != final.Stats().Commits {
		t.Errorf("commits counter = %d, stats say %d", got, final.Stats().Commits)
	}
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// Group commit actually coalesces: a burst of requests enqueued while the
// committer is busy lands in fewer commits than requests.
func TestServeCoalesces(t *testing.T) {
	svc := newServiceT(t, Config{PMs: mkPool(100, 100), MaxBatch: 64, MaxWait: 2 * time.Millisecond})
	const n = 128
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := svc.Arrive(mkVM(i, 5, 3)); err != nil {
				t.Errorf("arrive %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	st := svc.Stats()
	if st.Requests != n {
		t.Fatalf("committed %d requests, want %d", st.Requests, n)
	}
	if st.Commits >= n {
		t.Errorf("%d commits for %d requests: no coalescing happened", st.Commits, n)
	}
	if st.Placed != n {
		t.Errorf("placed %d, want %d", st.Placed, n)
	}
}

// Snapshots are stable: a snapshot taken before further commits keeps
// reporting its own version and fleet, while the service moves on.
func TestSnapshotIsolation(t *testing.T) {
	svc := newServiceT(t, Config{MaxBatch: 1})
	if _, err := svc.Arrive(mkVM(1, 10, 5)); err != nil {
		t.Fatal(err)
	}
	old := svc.Snapshot()
	oldVersion := old.Version()
	for i := 2; i < 10; i++ {
		if _, err := svc.Arrive(mkVM(i, 10, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if old.Version() != oldVersion || old.Stats().VMs != 1 {
		t.Errorf("old snapshot drifted: version %d, VMs %d", old.Version(), old.Stats().VMs)
	}
	p, err := old.Placement()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVMs() != 1 {
		t.Errorf("old snapshot materialised %d VMs, want 1", p.NumVMs())
	}
	cur := svc.Snapshot()
	if cur.Stats().VMs != 9 {
		t.Errorf("current snapshot holds %d VMs, want 9", cur.Stats().VMs)
	}
	if cur.Version() <= oldVersion {
		t.Errorf("version did not advance: %d → %d", oldVersion, cur.Version())
	}
}

// The journal-rebuild path (base re-clone after the journal outgrows the
// fleet) keeps snapshots correct across many small commits and departures.
func TestSnapshotAfterJournalRebuild(t *testing.T) {
	svc := newServiceT(t, Config{PMs: mkPool(40, 100), MaxBatch: 1})
	rng := rand.New(rand.NewSource(3))
	live := []int{}
	for i := 0; i < 4*rebuildMinOps; i++ {
		if rng.Float64() < 0.45 && len(live) > 0 {
			j := rng.Intn(len(live))
			id := live[j]
			live = append(live[:j], live[j+1:]...)
			if err := svc.Depart(id); err != nil {
				t.Fatal(err)
			}
		} else {
			vm := mkVM(i, 2+8*rng.Float64(), 2+8*rng.Float64())
			if _, err := svc.Arrive(vm); err != nil {
				t.Fatal(err)
			}
			live = append(live, vm.ID)
		}
	}
	snap := svc.Snapshot()
	p, err := snap.Placement()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVMs() != len(live) {
		t.Fatalf("snapshot holds %d VMs, want %d", p.NumVMs(), len(live))
	}
	for _, id := range live {
		if _, ok := p.PMOf(id); !ok {
			t.Errorf("live VM %d missing from snapshot", id)
		}
	}
}

// RefreshTable goes through the shared table cache: concurrent refreshes of
// the same cohort across services solve once (counter-verified), and the
// resulting tables are the same instance.
func TestRefreshSharesTableCache(t *testing.T) {
	cache := queuing.NewTableCache()
	strategy := paperStrategy()
	strategy.Tables = cache
	mk := func() *Service {
		return newServiceT(t, Config{Strategy: strategy, PMs: mkPool(10, 100), MaxBatch: 4})
	}
	a, b := mk(), mk()
	if got := cache.Solves(); got != 1 {
		t.Fatalf("constructing two services performed %d table solves, want 1", got)
	}
	// Same homogeneous fleet on both → identical refresh cohort.
	for i := 0; i < 4; i++ {
		if _, err := a.Arrive(mkVM(i, 10, 5)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Arrive(mkVM(i, 10, 5)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			svc := a
			if i%2 == 1 {
				svc = b
			}
			if err := svc.RefreshTable(); err != nil {
				t.Errorf("refresh: %v", err)
			}
		}(i)
	}
	wg.Wait()
	// The fleet's rounded cohort (0.01, 0.09) equals the seed cohort, so
	// even the refreshes are cache hits: still exactly one solve.
	if got := cache.Solves(); got != 1 {
		t.Errorf("after concurrent refreshes the cache performed %d solves, want 1", got)
	}
	if a.Snapshot().Table() != b.Snapshot().Table() {
		t.Error("services hold distinct table instances for the same cohort")
	}
}

func TestServeClose(t *testing.T) {
	svc := newServiceT(t, Config{MaxBatch: 8})
	if _, err := svc.Arrive(mkVM(1, 10, 5)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := svc.Arrive(mkVM(2, 10, 5)); !errors.Is(err, ErrClosed) {
		t.Errorf("arrive after close: %v, want ErrClosed", err)
	}
	if err := svc.Depart(1); !errors.Is(err, ErrClosed) {
		t.Errorf("depart after close: %v, want ErrClosed", err)
	}
	if _, err := svc.ArriveBatch([]cloud.VM{mkVM(3, 1, 1)}); !errors.Is(err, ErrClosed) {
		t.Errorf("batch after close: %v, want ErrClosed", err)
	}
	if err := svc.RefreshTable(); !errors.Is(err, ErrClosed) {
		t.Errorf("refresh after close: %v, want ErrClosed", err)
	}
	// The last snapshot stays readable after close.
	if got := svc.Snapshot().Stats().VMs; got != 1 {
		t.Errorf("post-close snapshot holds %d VMs, want 1", got)
	}
}

// Depart errors (unknown id) surface to the caller without corrupting state.
func TestServeDepartUnknown(t *testing.T) {
	svc := newServiceT(t, Config{MaxBatch: 1})
	if err := svc.Depart(42); err == nil {
		t.Fatal("unknown depart accepted")
	}
	if _, err := svc.Arrive(mkVM(1, 10, 5)); err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().Departed; got != 0 {
		t.Errorf("failed depart counted: %d", got)
	}
}
