package placesvc

// The snapshot op ring: a lock-free, single-writer, chunked append-only log
// of committed mutations. It replaces the grow-append journal + committer-side
// re-clone of earlier versions, whose two failure modes under load were
// (a) append-time reallocation bursts copying the whole journal and (b) an
// O(fleet) Placement.Clone inside the commit path every time the journal
// outgrew the fleet.
//
// Concurrency model:
//
//   - The committer is the only writer. It appends ops into fixed-size chunks
//     linked through plain `next` pointers and never mutates an op slot twice.
//   - Readers never touch the ring directly: they receive a *Snapshot through
//     the service's atomic pointer. The atomic publish is the release/acquire
//     edge that makes every op the snapshot references (head, skip, count)
//     visible — no per-op atomics, no locks, no reader-side retries.
//   - Reclamation is garbage collection: a chunk lives exactly as long as
//     some snapshot (or the ring head) still references it. Nothing is ever
//     truncated in place, so a years-old snapshot stays replayable.
//
// Epochs: every base swap — adopting a reader-materialised placement or the
// clone fallback — advances the ring epoch. A snapshot's epoch names the base
// lineage its (head, skip, count) triple is relative to; the committer only
// adopts a materialisation whose epoch matches the current one, which is what
// makes adoption sound without ever comparing placements.
const opChunkSize = 256

// opChunk is one fixed-size block of the log. ops[0:n] are committed; the
// writer fills slots left to right and links a fresh chunk when full.
type opChunk struct {
	ops  [opChunkSize]op
	n    int // writer-owned; readers are bounded by Snapshot.count instead
	next *opChunk
}

// opRing is the writer's view of the log: the base position (head/skip), the
// number of ops since the base (count), and the append position (tail).
type opRing struct {
	head  *opChunk // chunk holding the first op after the base
	skip  int      // ops in head that precede the base position
	count int      // ops between base and tail — the replay length
	tail  *opChunk // append target
	epoch uint64   // base-lineage counter; bumps on every base swap
}

func newOpRing() *opRing {
	c := &opChunk{}
	return &opRing{head: c, tail: c}
}

// append records one committed op. Writer-only.
func (r *opRing) append(o op) {
	t := r.tail
	if t.n == opChunkSize {
		nc := &opChunk{}
		t.next = nc
		r.tail = nc
		t = nc
	}
	t.ops[t.n] = o
	t.n++
	r.count++
}

// adopt advances the base past the ops a published snapshot has already
// materialised: the snapshot's memoised placement becomes the new base (the
// caller installs it) and the ring's replay window shrinks to the ops
// appended after that snapshot. Writer-only; the snapshot must belong to the
// current epoch.
func (r *opRing) adopt(s *Snapshot) {
	r.head = s.endChunk
	r.skip = s.endOff
	r.count -= s.count
	r.epoch++
}

// rebase resets the replay window to empty at the current append position —
// the clone-fallback path, used when no reader materialisation is available
// to adopt and the window must stop growing. Writer-only.
func (r *opRing) rebase() {
	r.head = r.tail
	r.skip = r.tail.n
	r.count = 0
	r.epoch++
}
