// Reconsolidate: the §IV-E periodic recalculation in practice. A cloud that
// has been running for a while (with arrivals and departures) drifts away
// from an optimal packing; this example re-runs Algorithm 2 over the live
// fleet, derives the minimal safe migration plan, and shows what the
// re-packing buys.
//
//	go run ./examples/reconsolidate
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const (
		rho = 0.01
		d   = 16
	)
	rng := rand.New(rand.NewSource(41))
	pms := make([]repro.PM, 40)
	for i := range pms {
		pms[i] = repro.PM{ID: i, Capacity: 100}
	}
	strategy := repro.QueuingFFD{Rho: rho, MaxVMsPerPM: d}
	online, err := repro.NewOnline(strategy, pms, 0.01, 0.09)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate months of churn: 120 arrivals interleaved with 60 departures.
	fmt.Println("Phase 1 — a cloud accumulates churn:")
	var live []int
	nextID := 0
	for i := 0; i < 180; i++ {
		if i%3 != 2 || len(live) == 0 {
			vm := repro.VM{ID: nextID, POn: 0.01, POff: 0.09,
				Rb: 2 + 18*rng.Float64(), Re: 2 + 18*rng.Float64()}
			nextID++
			if _, err := online.Arrive(vm); err == nil {
				live = append(live, vm.ID)
			}
		} else {
			victim := rng.Intn(len(live))
			if err := online.Depart(live[victim]); err != nil {
				log.Fatal(err)
			}
			live = append(live[:victim], live[victim+1:]...)
		}
	}
	current := online.Placement()
	fmt.Printf("  after churn: %d VMs on %d PMs\n", current.NumVMs(), current.NumUsedPMs())

	// Phase 2: re-run Algorithm 2 on the live fleet and plan migrations.
	fmt.Println("\nPhase 2 — periodic recalculation (fresh Algorithm 2 + migration plan):")
	plan, res, err := strategy.Reconsolidate(current)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fresh packing needs %d PMs (currently %d)\n",
		res.UsedPMs(), current.NumUsedPMs())
	fmt.Printf("  migration plan: %d moves, %d deferred\n", len(plan.Moves), len(plan.Deferred))
	if len(plan.Moves) > 0 {
		show := plan.Moves
		if len(show) > 5 {
			show = show[:5]
		}
		for _, mv := range show {
			fmt.Printf("    move VM %d: PM %d → PM %d\n", mv.VMID, mv.FromPM, mv.ToPM)
		}
		if len(plan.Moves) > 5 {
			fmt.Printf("    … and %d more\n", len(plan.Moves)-5)
		}
	}

	// Phase 3: execute the plan and verify the invariant held throughout.
	fmt.Println("\nPhase 3 — execute the plan in order:")
	working := current.Clone()
	table := online.Table()
	for i, mv := range plan.Moves {
		vm, _ := working.VM(mv.VMID)
		if _, err := working.Remove(mv.VMID); err != nil {
			log.Fatal(err)
		}
		if err := working.Assign(vm, mv.ToPM); err != nil {
			log.Fatal(err)
		}
		if v := repro.CheckReserved(working, table); v != nil {
			log.Fatalf("move %d broke Eq. (17): %v", i, v)
		}
	}
	fmt.Printf("  executed %d moves; Eq. (17) held after every step\n", len(plan.Moves))
	fmt.Printf("  PMs in use: %d → %d (released %d machines)\n",
		current.NumUsedPMs(), working.NumUsedPMs(),
		current.NumUsedPMs()-working.NumUsedPMs())

	// For contrast: how many moves would a naive "rebuild from scratch"
	// imply? (every VM whose host changed — same thing the planner counts,
	// so the saving comes purely from QueuingFFD's stable ordering.)
	moved := 0
	for _, vm := range current.VMs() {
		a, _ := current.PMOf(vm.ID)
		b, _ := res.Placement.PMOf(vm.ID)
		if a != b {
			moved++
		}
	}
	fmt.Printf("\n%d of %d VMs keep their host across the re-packing.\n",
		current.NumVMs()-moved, current.NumVMs())
}
