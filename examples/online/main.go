// Online: the §IV-E online situation. VMs arrive one at a time (and in one
// batch), depart, and the per-PM queue sizes recalculate automatically; a
// heterogeneous late wave triggers the periodic rounding refresh the paper
// prescribes.
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	pms := make([]repro.PM, 20)
	for i := range pms {
		pms[i] = repro.PM{ID: i, Capacity: 100}
	}
	strategy := repro.QueuingFFD{Rho: 0.01, MaxVMsPerPM: 16}
	online, err := repro.NewOnline(strategy, pms, 0.01, 0.09)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: ten VMs trickle in.
	rng := rand.New(rand.NewSource(11))
	fmt.Println("Phase 1 — single arrivals:")
	for id := 0; id < 10; id++ {
		vm := repro.VM{ID: id, POn: 0.01, POff: 0.09,
			Rb: 5 + 15*rng.Float64(), Re: 3 + 10*rng.Float64()}
		pmID, err := online.Arrive(vm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  VM %2d (Rb %.1f, Re %.1f) → PM %d\n", vm.ID, vm.Rb, vm.Re, pmID)
	}
	report(online)

	// Phase 2: three departures shrink queues implicitly.
	fmt.Println("\nPhase 2 — departures of VMs 1, 4, 7:")
	for _, id := range []int{1, 4, 7} {
		if err := online.Depart(id); err != nil {
			log.Fatal(err)
		}
	}
	report(online)

	// Phase 3: a batch arrives and is placed with the full Algorithm 2
	// ordering (cluster by Re, sort, first-fit).
	fmt.Println("\nPhase 3 — batch arrival of 15 VMs:")
	batch := make([]repro.VM, 15)
	for i := range batch {
		batch[i] = repro.VM{ID: 100 + i, POn: 0.01, POff: 0.09,
			Rb: 5 + 15*rng.Float64(), Re: 3 + 10*rng.Float64()}
	}
	unplaced, err := online.ArriveBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  placed %d, unplaced %d\n", len(batch)-len(unplaced), len(unplaced))
	report(online)

	// Phase 4: a burstier wave arrives; the rounded (p_on, p_off) drift, so
	// refresh the mapping table and audit for overflows.
	fmt.Println("\nPhase 4 — bursty wave and table refresh:")
	for i := 0; i < 5; i++ {
		vm := repro.VM{ID: 200 + i, POn: 0.05, POff: 0.05,
			Rb: 5 + 10*rng.Float64(), Re: 3 + 8*rng.Float64()}
		if _, err := online.Arrive(vm); err != nil {
			log.Fatal(err)
		}
	}
	before := online.Table().Blocks(8)
	if err := online.RefreshTable(); err != nil {
		log.Fatal(err)
	}
	after := online.Table().Blocks(8)
	fmt.Printf("  mapping(8): %d blocks → %d blocks after refresh (p_on %.4f, p_off %.4f)\n",
		before, after, online.Table().POn(), online.Table().POff())
	if overflows := online.Overflows(); len(overflows) > 0 {
		fmt.Printf("  %d PM(s) now overflow Eq. (17) and are migration candidates:\n", len(overflows))
		for _, v := range overflows {
			fmt.Printf("    PM %d: footprint %.1f > capacity %.1f\n", v.PMID, v.Footprint, v.Capacity)
		}
	} else {
		fmt.Println("  no PM overflows the refreshed constraint")
	}
}

func report(o *repro.Online) {
	p := o.Placement()
	fmt.Printf("  → %d VMs on %d PMs", p.NumVMs(), p.NumUsedPMs())
	if v := repro.CheckReserved(p, o.Table()); v != nil {
		fmt.Printf(" — WARNING: %d Eq. (17) violations", len(v))
	} else {
		fmt.Print(" — Eq. (17) holds everywhere")
	}
	fmt.Println()
}
