// Multidim: the §IV-E multi-dimensional extension. VMs demand CPU and memory
// independently; the reservation is quantified per dimension and placement
// uses First Fit with Eq. (17) enforced on every dimension. The correlated
// case (map dimensions to one) is shown for contrast.
//
//	go run ./examples/multidim
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/cloud"
)

func main() {
	rng := rand.New(rand.NewSource(21))

	// 40 VMs with uncorrelated CPU (dim 0) and memory (dim 1) demands.
	vms := make([]repro.MultiVM, 40)
	for i := range vms {
		vms[i] = repro.MultiVM{
			ID: i, POn: 0.01, POff: 0.09,
			Rb: repro.ResourceVec{2 + 14*rng.Float64(), 1 + 7*rng.Float64()},
			Re: repro.ResourceVec{2 + 10*rng.Float64(), 1 + 5*rng.Float64()},
		}
	}
	pms := make([]repro.MultiPM, 40)
	for i := range pms {
		pms[i] = repro.MultiPM{ID: i, Capacity: repro.ResourceVec{100, 50}}
	}

	strategy := repro.MultiDimFF{Rho: 0.01, MaxVMsPerPM: 16, SortByTotalPeak: true}
	res, err := strategy.Place(vms, pms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uncorrelated dimensions: %d VMs on %d PMs (unplaced %d)\n",
		len(vms)-len(res.Unplaced), res.UsedPMs, len(res.Unplaced))

	// Show the per-PM load in both dimensions.
	type loads struct {
		cpuRb, memRb, cpuRe, memRe float64
		count                      int
	}
	perPM := map[int]*loads{}
	for _, vm := range vms {
		pmID, ok := res.Assignments[vm.ID]
		if !ok {
			continue
		}
		l := perPM[pmID]
		if l == nil {
			l = &loads{}
			perPM[pmID] = l
		}
		l.count++
		l.cpuRb += vm.Rb[0]
		l.memRb += vm.Rb[1]
		if vm.Re[0] > l.cpuRe {
			l.cpuRe = vm.Re[0]
		}
		if vm.Re[1] > l.memRe {
			l.memRe = vm.Re[1]
		}
	}
	table, err := repro.NewMappingTable(16, 0.01, 0.09, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-PM footprint (ΣRb + maxRe·blocks per dimension):")
	for pmID := 0; pmID < len(pms); pmID++ {
		l, ok := perPM[pmID]
		if !ok {
			continue
		}
		blocks := float64(table.Blocks(l.count))
		fmt.Printf("  PM %2d: %d VMs  cpu %.1f/100  mem %.1f/50\n",
			pmID, l.count, l.cpuRb+l.cpuRe*blocks, l.memRb+l.memRe*blocks)
	}

	// Correlated alternative: map (cpu, mem) to one dimension with weights
	// and run the full scalar Algorithm 2.
	project, err := cloud.CorrelationWeights([]float64{0.5, 1.0})
	if err != nil {
		log.Fatal(err)
	}
	scalarVMs := make([]repro.VM, len(vms))
	for i, vm := range vms {
		scalarVMs[i], err = cloud.ProjectCorrelated(vm, project)
		if err != nil {
			log.Fatal(err)
		}
	}
	scalarPMs := make([]repro.PM, len(pms))
	for i := range pms {
		c, err := project(pms[i].Capacity)
		if err != nil {
			log.Fatal(err)
		}
		scalarPMs[i] = repro.PM{ID: i, Capacity: c}
	}
	scalar := repro.QueuingFFD{Rho: 0.01, MaxVMsPerPM: 16}
	sres, err := scalar.Place(scalarVMs, scalarPMs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncorrelated projection (0.5·cpu + 1.0·mem): %d PMs with full Algorithm 2\n",
		sres.UsedPMs())
	fmt.Println("(the projection admits the two-step cluster scheme; per-dimension")
	fmt.Println(" reservation requires plain First Fit, as §IV-E notes)")
}
