// Multilevel: what the paper's two-state assumption costs on richer
// workloads. A night/day/flash-crowd (3-level) workload is collapsed to the
// ON-OFF model at each possible threshold; the example shows how the choice
// of threshold trades reservation size against the risk of undershooting the
// flash-crowd level, and validates the collapsed chain against a simulated
// multi-level trace.
//
//	go run ./examples/multilevel
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/markov"
	"repro/internal/metrics"
)

func main() {
	// A web server: quiet nights (2 units), busy days (10), rare flash
	// crowds (30). Transitions chosen so flash crowds are short and enter
	// only from the day state.
	ml, err := markov.NewMultiLevel([][]float64{
		{0.95, 0.05, 0.00},
		{0.04, 0.95, 0.01},
		{0.00, 0.10, 0.90},
	}, []float64{2, 10, 30})
	if err != nil {
		log.Fatal(err)
	}
	pi, err := ml.Stationary()
	if err != nil {
		log.Fatal(err)
	}
	mean, _ := ml.MeanDemand()
	fmt.Printf("3-level workload: stationary %.3f / %.3f / %.3f, mean demand %.2f\n",
		pi[0], pi[1], pi[2], mean)

	// Collapse at each threshold.
	fmt.Println("\nTwo-level collapses:")
	tab := metrics.NewTable("", "threshold", "p_on", "p_off", "R_b", "R_p", "demand RMSE")
	for th := 1; th <= 2; th++ {
		fit, err := ml.TwoLevelApproximation(th)
		if err != nil {
			log.Fatal(err)
		}
		label := "night | day+flash"
		if th == 2 {
			label = "night+day | flash"
		}
		tab.AddRow(label, fit.Chain.POn, fit.Chain.POff, fit.Rb, fit.Rp, fit.DemandRMSE)
	}
	fmt.Print(tab.String())
	best, err := ml.BestTwoLevelApproximation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best collapse by RMSE: threshold %d (RMSE %.2f)\n", best.Threshold, best.DemandRMSE)

	// What each collapse implies for the reservation: MapCal blocks for 8
	// collocated copies of this workload.
	fmt.Println("\nReservation for 8 collocated copies (rho = 0.01):")
	for th := 1; th <= 2; th++ {
		fit, _ := ml.TwoLevelApproximation(th)
		res, err := repro.MapCal(8, fit.Chain.POn, fit.Chain.POff, 0.01)
		if err != nil {
			log.Fatal(err)
		}
		footprint := 8*fit.Rb + float64(res.K)*(fit.Rp-fit.Rb)
		fmt.Printf("  threshold %d: %d blocks of %.1f each → footprint %.1f units\n",
			th, res.K, fit.Rp-fit.Rb, footprint)
	}

	// Validate the threshold-2 collapse against the true process: simulate
	// the multi-level chain, binarise at the threshold, and compare the
	// empirical switch rates with the collapsed chain's parameters.
	fmt.Println("\nValidation against a simulated multi-level trace (threshold 2):")
	rng := rand.New(rand.NewSource(9))
	start, _ := ml.SampleStationary(rng)
	states, _, err := ml.Trace(start, 400000, rng)
	if err != nil {
		log.Fatal(err)
	}
	binary := make([]markov.State, len(states))
	for i, s := range states {
		if s >= 2 {
			binary[i] = markov.On
		}
	}
	est, err := repro.EstimateOnOff(binary)
	if err != nil {
		log.Fatal(err)
	}
	fit, _ := ml.TwoLevelApproximation(2)
	fmt.Printf("  analytic collapse: p_on %.5f, p_off %.5f\n", fit.Chain.POn, fit.Chain.POff)
	fmt.Printf("  empirical (MLE):   p_on %.5f, p_off %.5f\n", est.POn, est.POff)
	fmt.Println("\nTakeaway: threshold 2 keeps R_p at the true flash level (safe but big")
	fmt.Println("blocks); threshold 1 halves the block size but its R_p undershoots flash")
	fmt.Println("crowds — the quantisation optimism DemandRMSE quantifies.")
}
