// Webfarm: the paper's §V-D scenario end to end. A fleet of web-server VMs
// sized per Table I is consolidated three ways (QUEUE, RB, RB-EX), then run
// through the datacenter simulator with live migration enabled. The output
// reproduces the Fig. 9/10 comparison: QUEUE migrates almost never; RB packs
// densest but churns (cycle migration); RB-EX lands in between.
//
//	go run ./examples/webfarm
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	const (
		nVMs      = 120
		rho       = 0.01
		d         = 16
		intervals = 100 // the paper's 100σ evaluation period
		seed      = 7
	)

	// Build the fleet from Table I entries (demand in hundreds of users).
	entries := workload.TableI()
	vms := make([]repro.VM, nVMs)
	for i := range vms {
		e := entries[i%len(entries)]
		vm := workload.VMFromEntry(i, e, 0.01, 0.09)
		vm.Rb /= 100
		vm.Re /= 100
		vms[i] = vm
	}
	rng := rand.New(rand.NewSource(seed))
	pms, err := repro.GeneratePMs(nVMs, 80, 100, rng)
	if err != nil {
		log.Fatal(err)
	}
	table, err := repro.NewMappingTable(d, 0.01, 0.09, rho)
	if err != nil {
		log.Fatal(err)
	}

	strategies := []repro.Strategy{
		repro.QueuingFFD{Rho: rho, MaxVMsPerPM: d},
		repro.FFDByRb{},
		repro.RBEX{Delta: 0.3},
	}

	tab := metrics.NewTable("Web farm under live migration (100σ evaluation period)",
		"strategy", "initial PMs", "final PMs", "migrations", "cycle migration", "events over time")
	for _, s := range strategies {
		res, err := s.Place(vms, pms)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Unplaced) > 0 {
			log.Fatalf("%s: %d VMs unplaced", s.Name(), len(res.Unplaced))
		}
		initial := res.UsedPMs()
		simulator, err := repro.NewSimulator(res.Placement, table, repro.SimConfig{
			Intervals:       intervals,
			Rho:             rho,
			EnableMigration: true,
			RequestNoise:    true,
			UsersPerUnit:    100, // demand units are hundreds of users
		}, rand.New(rand.NewSource(seed)))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := simulator.Run()
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(s.Name(), initial, rep.FinalPMs, rep.TotalMigrations,
			rep.CycleMigration(), metrics.Sparkline(rep.MigrationsOverTime.Buckets(20)))
	}
	fmt.Print(tab.String())
	fmt.Println("\nReading the table: RB starts with the fewest PMs but pays in constant")
	fmt.Println("migration churn; QUEUE pays a modest reservation up front and then the")
	fmt.Println("system stays quiet — the paper's balance of performance and energy.")
}
