// Quickstart: consolidate a small bursty fleet with QueuingFFD and inspect
// the reservation the queuing model computed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Eight web-server VMs: normal demand 10–20 units, spikes of 4–8 units,
	// spiking rarely (p_on = 0.01) and briefly (mean duration 1/0.09 ≈ 11
	// intervals).
	vms := []repro.VM{
		{ID: 0, POn: 0.01, POff: 0.09, Rb: 20, Re: 8},
		{ID: 1, POn: 0.01, POff: 0.09, Rb: 18, Re: 7},
		{ID: 2, POn: 0.01, POff: 0.09, Rb: 15, Re: 6},
		{ID: 3, POn: 0.01, POff: 0.09, Rb: 14, Re: 6},
		{ID: 4, POn: 0.01, POff: 0.09, Rb: 12, Re: 5},
		{ID: 5, POn: 0.01, POff: 0.09, Rb: 12, Re: 5},
		{ID: 6, POn: 0.01, POff: 0.09, Rb: 10, Re: 4},
		{ID: 7, POn: 0.01, POff: 0.09, Rb: 10, Re: 4},
	}
	pms := []repro.PM{
		{ID: 0, Capacity: 100},
		{ID: 1, Capacity: 100},
		{ID: 2, Capacity: 100},
	}

	// First, what does the queuing model say in isolation? For k collocated
	// VMs, MapCal returns the minimum number of spike-sized blocks that keep
	// the capacity-violation ratio under rho.
	const rho = 0.01
	for _, k := range []int{2, 4, 8} {
		res, err := repro.MapCal(k, 0.01, 0.09, rho)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MapCal: %d VMs need %d reserved blocks (analytic CVR %.4f ≤ %.2f)\n",
			k, res.K, res.CVR, rho)
	}

	// Now the full Algorithm 2.
	strategy := repro.QueuingFFD{Rho: rho, MaxVMsPerPM: 16}
	result, err := strategy.Place(vms, pms)
	if err != nil {
		log.Fatal(err)
	}
	table, err := strategy.Table(vms)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nQUEUE placement uses %d PM(s) for %d VMs:\n", result.UsedPMs(), len(vms))
	p := result.Placement
	for _, pmID := range p.UsedPMs() {
		pm, _ := p.PM(pmID)
		k := p.CountOn(pmID)
		fmt.Printf("  PM %d (cap %.0f): %d VMs, ΣRb=%.0f, block=%.0f×%d, footprint %.0f\n",
			pmID, pm.Capacity, k, p.SumRb(pmID), p.MaxRe(pmID), table.Blocks(k),
			p.ReservedFootprint(pmID, table))
	}
	if v := repro.CheckReserved(p, table); v != nil {
		log.Fatalf("Eq. (17) violated: %v", v)
	}
	fmt.Println("\nEq. (17) holds on every PM — the placement tolerates spikes locally.")

	// Compare against the two classic provisioning baselines.
	for _, s := range []repro.Strategy{repro.FFDByRp{}, repro.FFDByRb{}} {
		res, err := s.Place(vms, pms)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s uses %d PM(s)\n", s.Name(), res.UsedPMs())
	}
}
