// Fitting: from monitoring data to a consolidation. The paper assumes the
// four-tuple (p_on, p_off, R_b, R_e) is known; in practice an operator only
// has demand traces. This example generates "monitoring data" from hidden
// ground-truth VMs, fits the ON-OFF model to each trace (two-level
// quantisation + MLE), consolidates with the *fitted* parameters, and then
// verifies against the ground truth that the CVR guarantee still holds.
//
//	go run ./examples/fitting
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/workload"
)

func main() {
	const (
		nVMs     = 60
		traceLen = 20000 // ~one week of 30 s samples
		rho      = 0.01
		d        = 16
	)
	rng := rand.New(rand.NewSource(31))

	// Hidden ground truth: the fleet an operator cannot see directly.
	truth, err := repro.GenerateVMs(repro.DefaultFleetParams(repro.PatternEqual, nVMs), rng)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 — monitoring: each VM produces a demand trace.
	fmt.Println("Step 1: collect demand traces and fit the ON-OFF model per VM")
	fitted := make([]repro.VM, nVMs)
	var maxPOnErr, maxLevelErr float64
	for i, vm := range truth {
		trace, err := workload.GenerateDemandTrace(vm, traceLen, rng)
		if err != nil {
			log.Fatal(err)
		}
		levels, est, err := repro.FitVM(trace.Demand)
		if err != nil {
			log.Fatal(err)
		}
		fitted[i] = repro.VM{ID: vm.ID, POn: est.POn, POff: est.POff,
			Rb: levels.Rb, Re: levels.Re()}
		if e := abs(est.POn - vm.POn); e > maxPOnErr {
			maxPOnErr = e
		}
		if e := abs(levels.Rb - vm.Rb); e > maxLevelErr {
			maxLevelErr = e
		}
	}
	fmt.Printf("  worst p_on error: %.4f, worst R_b error: %.3f over %d VMs\n",
		maxPOnErr, maxLevelErr, nVMs)

	// Step 2 — consolidate with the fitted fleet (heterogeneous estimates
	// are rounded by the strategy's policy).
	fmt.Println("\nStep 2: consolidate with the fitted parameters")
	pms, err := repro.GeneratePMs(nVMs, 80, 100, rng)
	if err != nil {
		log.Fatal(err)
	}
	strategy := repro.QueuingFFD{Rho: rho, MaxVMsPerPM: d, Rounding: repro.RoundConservative}
	res, err := strategy.Place(fitted, pms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  QUEUE on fitted fleet: %d PMs (unplaced %d)\n", res.UsedPMs(), len(res.Unplaced))

	// Step 3 — validate: rebuild the same placement but with ground-truth
	// specs, and simulate. The guarantee must survive estimation error.
	fmt.Println("\nStep 3: simulate the placement against the hidden ground truth")
	truthByID := make(map[int]repro.VM, nVMs)
	for _, vm := range truth {
		truthByID[vm.ID] = vm
	}
	truthPlacement := res.Placement.Clone()
	for _, vm := range res.Placement.VMs() {
		pmID, _ := truthPlacement.PMOf(vm.ID)
		if _, err := truthPlacement.Remove(vm.ID); err != nil {
			log.Fatal(err)
		}
		if err := truthPlacement.Assign(truthByID[vm.ID], pmID); err != nil {
			log.Fatal(err)
		}
	}
	table, err := strategy.Table(fitted)
	if err != nil {
		log.Fatal(err)
	}
	simulator, err := repro.NewSimulator(truthPlacement, table, repro.SimConfig{
		Intervals: 3000,
		Rho:       rho,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := simulator.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ground-truth mean CVR: %.4f (budget ρ = %.2f), max %.4f, PMs over ρ: %d of %d\n",
		rep.CVR.Mean(), rho, rep.CVR.Max(), len(rep.CVR.OverThreshold(rho)), len(rep.CVR.PMs()))

	// Step 4 — transient view: how long until a freshly packed PM first
	// overruns its reservation?
	fmt.Println("\nStep 4: transient analysis of the fullest PM")
	var fullest, fullestK int
	for _, pmID := range res.Placement.UsedPMs() {
		if k := res.Placement.CountOn(pmID); k > fullestK {
			fullest, fullestK = pmID, k
		}
	}
	tr, err := repro.NewTransient(fullestK, table.POn(), table.POff())
	if err != nil {
		log.Fatal(err)
	}
	blocks := table.Blocks(fullestK)
	h, err := tr.MeanTimeToViolation(blocks)
	if err != nil {
		log.Fatal(err)
	}
	mix, err := tr.MixingTime(0.01, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  PM %d hosts %d VMs with %d blocks: mean time to first violation %.0f intervals,\n",
		fullest, fullestK, blocks, h[0])
	fmt.Printf("  occupancy mixes to steady state in %d intervals (paper observed ≈10σ)\n", mix)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
