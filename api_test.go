package repro_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro"
	"repro/internal/markov"
)

// TestEndToEndPipeline drives the whole system through the public API:
// generate a fleet, consolidate with every strategy, audit the constraints,
// simulate with live migration, and compare energy-relevant outcomes.
func TestEndToEndPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(1001))
	vms, err := repro.GenerateVMs(repro.DefaultFleetParams(repro.PatternEqual, 150), rng)
	if err != nil {
		t.Fatal(err)
	}
	pms, err := repro.GeneratePMs(150, 80, 100, rng)
	if err != nil {
		t.Fatal(err)
	}

	queue := repro.QueuingFFD{Rho: 0.01, MaxVMsPerPM: 16}
	qRes, err := queue.Place(vms, pms)
	if err != nil {
		t.Fatal(err)
	}
	table, err := queue.Table(vms)
	if err != nil {
		t.Fatal(err)
	}
	if v := repro.CheckReserved(qRes.Placement, table); v != nil {
		t.Fatalf("Eq. (17) violated: %v", v)
	}

	rpRes, err := repro.FFDByRp{}.Place(vms, pms)
	if err != nil {
		t.Fatal(err)
	}
	rbRes, err := repro.FFDByRb{}.Place(vms, pms)
	if err != nil {
		t.Fatal(err)
	}
	if v := repro.CheckPeak(rpRes.Placement); v != nil {
		t.Fatalf("peak constraint violated: %v", v)
	}
	if v := repro.CheckNormal(rbRes.Placement); v != nil {
		t.Fatalf("normal constraint violated: %v", v)
	}
	if !(rbRes.UsedPMs() <= qRes.UsedPMs() && qRes.UsedPMs() <= rpRes.UsedPMs()) {
		t.Fatalf("ordering broken: RB %d, QUEUE %d, RP %d",
			rbRes.UsedPMs(), qRes.UsedPMs(), rpRes.UsedPMs())
	}

	// Simulate the QUEUE placement: CVR must stay near rho, migrations near
	// zero.
	simulator, err := repro.NewSimulator(qRes.Placement, table, repro.SimConfig{
		Intervals:       200,
		Rho:             0.01,
		EnableMigration: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CVR.Mean() > 0.03 {
		t.Errorf("QUEUE simulated mean CVR %v too high", rep.CVR.Mean())
	}
	if rep.CycleMigration() {
		t.Error("QUEUE flagged for cycle migration")
	}
}

func TestPublicMapCalMatchesTable(t *testing.T) {
	table, err := repro.NewMappingTable(16, 0.01, 0.09, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 16; k++ {
		res, err := repro.MapCal(k, 0.01, 0.09, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if table.Blocks(k) != res.K {
			t.Errorf("table(%d) = %d, MapCal = %d", k, table.Blocks(k), res.K)
		}
		if res.K < k && res.CVR > 0.01 {
			t.Errorf("k=%d: CVR %v above rho", k, res.CVR)
		}
	}
}

func TestPublicOnOff(t *testing.T) {
	chain, err := repro.NewOnOff(0.01, 0.09)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(chain.StationaryOn()-0.1) > 1e-12 {
		t.Errorf("StationaryOn = %v", chain.StationaryOn())
	}
	if _, err := repro.NewOnOff(0, 0.5); err == nil {
		t.Error("invalid chain accepted")
	}
}

func TestPublicOnlineFlow(t *testing.T) {
	pms := []repro.PM{{ID: 0, Capacity: 100}, {ID: 1, Capacity: 100}}
	online, err := repro.NewOnline(repro.QueuingFFD{Rho: 0.01, MaxVMsPerPM: 16}, pms, 0.01, 0.09)
	if err != nil {
		t.Fatal(err)
	}
	vm := repro.VM{ID: 1, POn: 0.01, POff: 0.09, Rb: 10, Re: 5}
	pmID, err := online.Arrive(vm)
	if err != nil {
		t.Fatal(err)
	}
	if pmID != 0 {
		t.Errorf("arrived on PM %d, want 0", pmID)
	}
	if err := online.Depart(1); err != nil {
		t.Fatal(err)
	}
	if online.Placement().NumVMs() != 0 {
		t.Error("departure did not remove VM")
	}
}

func TestPublicExperimentSurface(t *testing.T) {
	if len(repro.ListExperiments()) != 15 {
		t.Errorf("expected 15 experiments, got %d", len(repro.ListExperiments()))
	}
	var buf bytes.Buffer
	opt := repro.ExperimentOptions{Out: &buf, Seed: 1, TraceLen: 50}
	if err := repro.RunExperiment("tab1", opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("tab1 output missing header")
	}
}

func TestPublicFleetRoundTrip(t *testing.T) {
	spec := `{
	  "vms": [{"ID":0,"POn":0.01,"POff":0.09,"Rb":10,"Re":5}],
	  "pms": [{"ID":0,"Capacity":100}],
	  "rho": 0.01,
	  "max_vms_per_pm": 16
	}`
	fleet, err := repro.ReadFleet(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.VMs) != 1 || fleet.VMs[0].Rb != 10 {
		t.Errorf("fleet decoded wrong: %+v", fleet)
	}
}

func TestPublicMultiDim(t *testing.T) {
	vms := []repro.MultiVM{
		{ID: 0, POn: 0.01, POff: 0.09,
			Rb: repro.ResourceVec{10, 4}, Re: repro.ResourceVec{5, 2}},
	}
	pms := []repro.MultiPM{{ID: 0, Capacity: repro.ResourceVec{100, 50}}}
	res, err := repro.MultiDimFF{Rho: 0.01, MaxVMsPerPM: 16}.Place(vms, pms)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedPMs != 1 || res.Assignments[0] != 0 {
		t.Errorf("multidim placement wrong: %+v", res)
	}
}

func TestPublicAnalysisSurface(t *testing.T) {
	// Transient queries.
	tr, err := repro.NewTransient(8, 0.01, 0.09)
	if err != nil {
		t.Fatal(err)
	}
	if mix, err := tr.MixingTime(0.01, 100000); err != nil || mix < 1 {
		t.Errorf("MixingTime = %d, %v", mix, err)
	}
	// Sweeps.
	points, err := repro.SweepRho(8, 0.01, 0.09, []float64{0.01, 0.05})
	if err != nil || len(points) != 2 {
		t.Fatalf("SweepRho: %v, %v", points, err)
	}
	kPoints, err := repro.SweepK([]int{2, 8}, 0.01, 0.09, 0.01)
	if err != nil || len(kPoints) != 2 {
		t.Fatalf("SweepK: %v, %v", kPoints, err)
	}
	// Exact hetero.
	hres, err := repro.MapCalHetero([]float64{0.01, 0.2}, []float64{0.09, 0.2}, 0.01)
	if err != nil || hres.Sources != 2 {
		t.Fatalf("MapCalHetero: %+v, %v", hres, err)
	}
}

func TestPublicFittingSurface(t *testing.T) {
	demand := []float64{10, 10, 18, 18, 10, 18, 10, 10}
	levels, est, err := repro.FitVM(demand)
	if err != nil {
		t.Fatal(err)
	}
	if levels.Rb >= levels.Rp {
		t.Errorf("levels (%v, %v)", levels.Rb, levels.Rp)
	}
	if est.POn <= 0 || est.POff <= 0 {
		t.Errorf("estimate %+v", est)
	}
	states := []markov.State{markov.Off, markov.On, markov.Off, markov.On}
	if _, err := repro.EstimateOnOff(states); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSimulationSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	vms, err := repro.GenerateVMs(repro.DefaultFleetParams(repro.PatternEqual, 40), rng)
	if err != nil {
		t.Fatal(err)
	}
	pms, err := repro.GeneratePMs(40, 80, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	strategy := repro.QueuingFFD{Rho: 0.01, MaxVMsPerPM: 16}
	res, err := strategy.Place(vms, pms)
	if err != nil {
		t.Fatal(err)
	}
	table, err := repro.NewMappingTable(16, 0.01, 0.09, 0.01)
	if err != nil {
		t.Fatal(err)
	}

	// Trace-driven simulation.
	traces := make(map[int][]markov.State, len(vms))
	for _, vm := range vms {
		chain, err := repro.NewOnOff(vm.POn, vm.POff)
		if err != nil {
			t.Fatal(err)
		}
		traces[vm.ID] = chain.Trace(markov.Off, 101, rng)
	}
	replay, err := repro.NewTraceReplay(traces, false)
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := repro.NewSimulatorWithSource(res.Placement, table, repro.SimConfig{
		Intervals: 100, Rho: 0.01,
	}, replay, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim2.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Energy accounting of the run.
	model := repro.DefaultEnergyModel()
	energy, err := model.Energy(rep, 0.7)
	if err != nil || energy.TotalJoules <= 0 {
		t.Fatalf("energy: %+v, %v", energy, err)
	}

	// Churn simulation.
	churn, err := repro.NewChurnSimulator(res.Placement, table, repro.ChurnConfig{
		Sim:          repro.SimConfig{Intervals: 30, Rho: 0.01},
		ArrivalProb:  0.3,
		MeanLifetime: 100,
		NewVM: func(arrival int, r *rand.Rand) repro.VM {
			return repro.VM{ID: 50000 + arrival, POn: 0.01, POff: 0.09, Rb: 10, Re: 5}
		},
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := churn.Run(); err != nil {
		t.Fatal(err)
	}

	// Controller loop.
	ctrl, err := repro.NewController(res.Placement, table, repro.SimConfig{
		Intervals: 40, Rho: 0.01, EnableMigration: true,
	}, strategy, 20, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	crep, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if crep.ReconsolidationRuns != 1 {
		t.Errorf("controller ran recon %d times, want 1", crep.ReconsolidationRuns)
	}

	// Reconsolidation plan + hetero audit.
	plan, _, err := strategy.Reconsolidate(res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	_ = plan
	if _, err := repro.HeteroViolations(res.Placement, 0.01); err != nil {
		t.Fatal(err)
	}
}

func TestPublicRunAllExperiments(t *testing.T) {
	var buf bytes.Buffer
	opt := repro.ExperimentOptions{
		Out: &buf, Seed: 5, VMCounts: []int{20}, Trials: 2,
		Intervals: 30, SimIntervals: 100, TraceLen: 40,
	}
	if err := repro.RunAllExperiments(opt); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
}
