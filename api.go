// Package repro is a Go implementation of "Burstiness-aware Server
// Consolidation via Queuing Theory Approach in a Computing Cloud"
// (Luo & Qian, IPDPS 2013).
//
// The library consolidates virtual machines whose demand follows a two-state
// ON-OFF Markov chain onto the minimum number of physical machines while
// bounding each PM's capacity-violation ratio by a threshold ρ. The key
// primitive is MapCal (Algorithm 1), which treats the resources reserved on a
// PM as the serving windows of a finite-source Geom/Geom/K queue and computes
// the minimum number of windows whose stationary blocking probability stays
// below ρ; QueuingFFD (Algorithm 2) builds a complete cluster-sort-first-fit
// consolidation on top of it.
//
// This root package re-exports the public surface of the internal packages so
// downstream users import a single path:
//
//	import "repro"
//
//	vms := []repro.VM{{ID: 0, POn: 0.01, POff: 0.09, Rb: 10, Re: 5}, ...}
//	pms := []repro.PM{{ID: 0, Capacity: 100}, ...}
//	strategy := repro.QueuingFFD{Rho: 0.01, MaxVMsPerPM: 16}
//	result, err := strategy.Place(vms, pms)
//
// Sub-surfaces:
//
//   - Workload model and chains: OnOff, BusyBlocks (internal/markov)
//   - Reservation quantification: MapCal, MappingTable, GeomGeomK
//     (internal/queuing)
//   - Consolidation strategies: QueuingFFD, FFDByRp, FFDByRb, RBEX,
//     MultiDimFF, Online (internal/core)
//   - Datacenter simulation: Simulator, SimConfig, SimReport (internal/sim)
//   - Paper experiments: RunExperiment / ListExperiments
//     (internal/experiments)
package repro

import (
	"io"
	"math/rand"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/markov"
	"repro/internal/placesvc"
	"repro/internal/queuing"
	"repro/internal/shardsvc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Domain types (internal/cloud).
type (
	// VM is the paper's four-tuple V_i = (p_on, p_off, R_b, R_e).
	VM = cloud.VM
	// PM is a physical machine with one-dimensional capacity.
	PM = cloud.PM
	// Placement is the VM-to-PM mapping X.
	Placement = cloud.Placement
	// Violation reports a PM whose admission invariant does not hold.
	Violation = cloud.Violation
	// Fleet is the JSON interchange format for cmd/consolidate.
	Fleet = cloud.Fleet
	// MultiVM is a VM with multi-dimensional demand (§IV-E).
	MultiVM = cloud.MultiVM
	// MultiPM is a PM with multi-dimensional capacity.
	MultiPM = cloud.MultiPM
	// ResourceVec is a demand/capacity vector over resource dimensions.
	ResourceVec = cloud.ResourceVec
)

// Consolidation strategies (internal/core).
type (
	// Strategy is a consolidation algorithm.
	Strategy = core.Strategy
	// Result is the outcome of one consolidation run.
	Result = core.Result
	// QueuingFFD is the paper's Algorithm 2 ("QUEUE").
	QueuingFFD = core.QueuingFFD
	// FFDByRp provisions for peak workload ("RP").
	FFDByRp = core.FFDByRp
	// FFDByRb provisions for normal workload ("RB").
	FFDByRb = core.FFDByRb
	// RBEX reserves a fixed δ-fraction on each PM ("RB-EX").
	RBEX = core.RBEX
	// EffectiveSizing is the stochastic-bin-packing comparator ("SBP") from
	// the related work (§II refs [6], [10]).
	EffectiveSizing = core.EffectiveSizing
	// ConvolutionFF packs by the exact stationary overflow probability
	// ("CONV") — the tightest admission Eq. (5) permits, used as a bound.
	ConvolutionFF = core.ConvolutionFF
	// MultiDimFF is the §IV-E multi-dimensional extension.
	MultiDimFF = core.MultiDimFF
	// Online adapts QueuingFFD to arrivals and departures (§IV-E).
	Online = core.Online
	// MigrationPlan is an ordered, admission-safe set of moves between two
	// placements (the §IV-E periodic recalculation).
	MigrationPlan = core.Plan
	// Move relocates one VM between PMs.
	Move = core.Move
	// RoundingPolicy rounds heterogeneous switch probabilities.
	RoundingPolicy = core.RoundingPolicy
	// Placer selects the first-fit implementation (indexed vs linear scan).
	Placer = core.Placer
)

// First-fit placer implementations. PlacerIndexed (the default) answers each
// placement in O(log m) through a segment-tree index over per-PM headroom;
// PlacerLinear is the paper's O(m) scan, kept as a cross-validation oracle.
// Both produce identical placements.
const (
	PlacerIndexed = core.PlacerIndexed
	PlacerLinear  = core.PlacerLinear
)

// Rounding policies for heterogeneous fleets.
const (
	RoundMean         = core.RoundMean
	RoundConservative = core.RoundConservative
	RoundMedian       = core.RoundMedian
)

// NewOnline creates an online consolidator; see core.NewOnline.
func NewOnline(strategy QueuingFFD, pms []PM, pOn, pOff float64) (*Online, error) {
	return core.NewOnline(strategy, pms, pOn, pOff)
}

// Queuing theory (internal/queuing).
type (
	// MapCalResult is what Algorithm 1 derives for one (k, p_on, p_off, ρ).
	MapCalResult = queuing.Result
	// MappingTable caches mapping(k) for k ∈ [1, d].
	MappingTable = queuing.MappingTable
	// GeomGeomK analyses the finite-source queue a reserved PM realises.
	GeomGeomK = queuing.GeomGeomK
	// Transient answers time-dependent questions about a reserved PM
	// (violation probability over time, mixing time, time to first
	// violation).
	Transient = queuing.Transient
)

// NewTransient wraps a busy-blocks chain for transient queries, served by the
// closed-form engine (t-independent per query).
func NewTransient(k int, pOn, pOff float64) (*Transient, error) {
	return queuing.NewTransient(k, pOn, pOff)
}

// TransientSolver selects the engine behind a Transient: the closed-form
// Binomial-convolution fast path or the O(t·k²) matrix-power oracle it is
// cross-validated against.
type TransientSolver = queuing.TransientSolver

const (
	// TransientAuto picks the fast path (currently the closed form).
	TransientAuto = queuing.TransientAuto
	// TransientClosedForm forces the t-independent convolution engine.
	TransientClosedForm = queuing.TransientClosedForm
	// TransientMatrix forces the matrix-power oracle (cross-validation only).
	TransientMatrix = queuing.TransientMatrix
)

// NewTransientWithSolver wraps a busy-blocks chain with an explicit engine.
func NewTransientWithSolver(k int, pOn, pOff float64, solver TransientSolver) (*Transient, error) {
	return queuing.NewTransientWithSolver(k, pOn, pOff, solver)
}

// ErrNeverViolates is returned (wrapped) by Transient.MeanTimeToViolation
// when the reservation covers every block, so the violation set is empty.
var ErrNeverViolates = queuing.ErrNeverViolates

// ForecastCache memoises transient occupancy forecasts keyed by
// (k, busy, p_on, p_off, bucketed horizon) with singleflight semantics — the
// serving-plane companion to TableCache. Hits are bit-identical to cold
// solves.
type ForecastCache = queuing.ForecastCache

// NewForecastCache creates an empty forecast cache.
func NewForecastCache() *ForecastCache { return queuing.NewForecastCache() }

// SharedForecasts returns the process-wide default forecast cache, used by
// the obs probes and the simulator's forecast hook when none is injected.
func SharedForecasts() *ForecastCache { return queuing.SharedForecasts() }

// SweepPoint is one row of a sensitivity sweep over ρ or k.
type SweepPoint = queuing.SweepPoint

// SweepRho evaluates MapCal across CVR budgets for a fixed population.
func SweepRho(k int, pOn, pOff float64, rhos []float64) ([]SweepPoint, error) {
	return queuing.SweepRho(k, pOn, pOff, rhos)
}

// SweepK evaluates MapCal across populations at a fixed budget.
func SweepK(ks []int, pOn, pOff, rho float64) ([]SweepPoint, error) {
	return queuing.SweepK(ks, pOn, pOff, rho)
}

// MapCalHetero computes the minimum block count for VMs with individual
// switch probabilities, exactly (Poisson-binomial stationary occupancy) —
// no §IV-E rounding.
func MapCalHetero(pOns, pOffs []float64, rho float64) (queuing.HeteroResult, error) {
	return queuing.MapCalHetero(pOns, pOffs, rho)
}

// HeteroViolations audits a placement under the exact heterogeneous model.
func HeteroViolations(p *Placement, rho float64) ([]Violation, error) {
	return core.HeteroViolations(p, rho)
}

// MapCal runs Algorithm 1: the minimum number of reservation blocks for k
// collocated VMs under CVR threshold rho.
func MapCal(k int, pOn, pOff, rho float64) (MapCalResult, error) {
	return queuing.MapCal(k, pOn, pOff, rho)
}

// NewMappingTable precomputes mapping(k) for all k in [1, d].
func NewMappingTable(d int, pOn, pOff, rho float64) (*MappingTable, error) {
	return queuing.NewMappingTable(d, pOn, pOff, rho)
}

// TableCache memoises whole mapping tables keyed by (d, p_on, p_off, ρ) with
// singleflight semantics: concurrent requests for the same cohort perform one
// solve and share the instance. Point QueuingFFD.Tables,
// ExperimentOptions.Tables, and AdmissionConfig strategies at one cache to
// share tables across the whole process.
type TableCache = queuing.TableCache

// NewTableCache creates an empty mapping-table cache.
func NewTableCache() *TableCache { return queuing.NewTableCache() }

// SharedTables returns the process-wide default table cache, used by every
// online consolidator whose strategy doesn't carry its own.
func SharedTables() *TableCache { return queuing.SharedTables() }

// Admission serving (internal/placesvc).
type (
	// AdmissionService is the concurrent group-commit front-end over Online:
	// many callers submit arrivals/departures, one committer batches them,
	// reads run lock-free against immutable snapshots.
	AdmissionService = placesvc.Service
	// AdmissionConfig parameterises an AdmissionService.
	AdmissionConfig = placesvc.Config
	// AdmissionSnapshot is an immutable view of the service state.
	AdmissionSnapshot = placesvc.Snapshot
	// AdmissionStats is the counter block published with each snapshot.
	AdmissionStats = placesvc.Stats
)

// ErrAdmissionClosed is returned for requests submitted after Close.
var ErrAdmissionClosed = placesvc.ErrClosed

// NewAdmissionService starts an admission service; see placesvc.New.
func NewAdmissionService(cfg AdmissionConfig) (*AdmissionService, error) {
	return placesvc.New(cfg)
}

// Federated admission serving (internal/shardsvc).
type (
	// Federation fronts several independent AdmissionService shards with
	// power-of-d-choices routing over their lock-free snapshots, plus a
	// background rebalancer migrating VMs when shard headroom skews.
	Federation = shardsvc.Federation
	// FederationConfig parameterises a Federation.
	FederationConfig = shardsvc.Config
	// FederationStats is the federation's routing/rebalance counter block.
	FederationStats = shardsvc.FedStats
	// RebalanceConfig shapes the federation's background rebalancer.
	RebalanceConfig = shardsvc.RebalanceConfig
)

// NewFederation partitions the PM pool into shards and starts one admission
// service per shard; see shardsvc.New. A MaxShards = 1 federation is
// bit-identical to a single AdmissionService.
func NewFederation(cfg FederationConfig) (*Federation, error) {
	return shardsvc.New(cfg)
}

// Workload model (internal/markov, internal/workload).
type (
	// OnOff is the two-state workload chain of Fig. 2.
	OnOff = markov.OnOff
	// BusyBlocks is the (k+1)-state occupancy chain of Fig. 4.
	BusyBlocks = markov.BusyBlocks
	// WorkloadPattern distinguishes R_b = R_e, R_b > R_e, R_b < R_e.
	WorkloadPattern = workload.Pattern
	// FleetParams configures random fleet generation (Fig. 5 settings).
	FleetParams = workload.FleetParams
	// ThinkTime is the §V-D user think-time model.
	ThinkTime = workload.ThinkTime
	// ChainEstimate is the MLE fit of an ON-OFF chain to an observed trace.
	ChainEstimate = markov.Estimate
	// LevelFit is the two-level quantisation of a raw demand trace.
	LevelFit = markov.LevelFit
)

// FitVM fits the paper's four-tuple to a raw demand trace: two-level
// quantisation plus MLE of the switch probabilities — how an operator derives
// (p_on, p_off, R_b, R_e) from monitoring data.
func FitVM(demand []float64) (LevelFit, ChainEstimate, error) { return markov.FitVM(demand) }

// EstimateOnOff fits switch probabilities to an already-binarised trace.
func EstimateOnOff(trace []markov.State) (ChainEstimate, error) {
	return markov.EstimateOnOff(trace)
}

// Workload patterns.
const (
	PatternEqual      = workload.PatternEqual
	PatternSmallSpike = workload.PatternSmallSpike
	PatternLargeSpike = workload.PatternLargeSpike
)

// NewOnOff validates and constructs an ON-OFF chain.
func NewOnOff(pOn, pOff float64) (OnOff, error) { return markov.NewOnOff(pOn, pOff) }

// GenerateVMs samples a random fleet per the Fig. 5 settings.
func GenerateVMs(p FleetParams, rng *rand.Rand) ([]VM, error) {
	return workload.GenerateVMs(p, rng)
}

// GeneratePMs samples a PM pool with capacities in [capMin, capMax].
func GeneratePMs(n int, capMin, capMax float64, rng *rand.Rand) ([]PM, error) {
	return workload.GeneratePMs(n, capMin, capMax, rng)
}

// DefaultFleetParams returns the paper's per-pattern generation ranges.
func DefaultFleetParams(pattern WorkloadPattern, n int) FleetParams {
	return workload.DefaultFleetParams(pattern, n)
}

// Simulation (internal/sim).
type (
	// Simulator advances a placement through simulated time.
	Simulator = sim.Simulator
	// SimConfig parameterises a simulation run.
	SimConfig = sim.Config
	// SimReport summarises a finished run.
	SimReport = sim.Report
	// MigrationEvent records one live migration.
	MigrationEvent = sim.MigrationEvent
	// EnergyModel converts PM activity into energy (linear server model).
	EnergyModel = sim.EnergyModel
	// EnergyReport summarises a run's energy accounting.
	EnergyReport = sim.EnergyReport
	// DemandSource supplies per-VM workload states to the simulator.
	DemandSource = sim.DemandSource
	// TraceReplay replays recorded traces as a DemandSource.
	TraceReplay = workload.TraceReplay
)

// NewTraceReplay builds a replay demand source from recorded state traces.
func NewTraceReplay(traces map[int][]markov.State, loop bool) (*TraceReplay, error) {
	return workload.NewTraceReplay(traces, loop)
}

// NewSimulatorWithSource builds a simulator over a custom demand source
// (e.g. a TraceReplay), enabling trace-driven evaluation.
func NewSimulatorWithSource(p *Placement, table *MappingTable, cfg SimConfig, source DemandSource, rng *rand.Rand) (*Simulator, error) {
	return sim.NewWithSource(p, table, cfg, source, rng)
}

// DefaultEnergyModel returns a typical dual-socket server power profile.
func DefaultEnergyModel() EnergyModel { return sim.DefaultEnergyModel() }

// Open-system (churn) simulation.
type (
	// ChurnConfig extends a simulation with tenant arrivals/departures.
	ChurnConfig = sim.ChurnConfig
	// ChurnReport summarises an open-system run.
	ChurnReport = sim.ChurnReport
	// ChurnSimulator wraps the simulator with churn.
	ChurnSimulator = sim.ChurnSimulator
)

// NewChurnSimulator builds an open-system simulator over a clone of the
// placement.
func NewChurnSimulator(p *Placement, table *MappingTable, cfg ChurnConfig, rng *rand.Rand) (*ChurnSimulator, error) {
	return sim.NewChurn(p, table, cfg, rng)
}

// Controller management loop (reactive migration + periodic reconsolidation).
type (
	// Controller runs the simulator with a periodic Algorithm 2 re-pack.
	Controller = sim.Controller
	// ControllerReport extends SimReport with reconsolidation accounting.
	ControllerReport = sim.ControllerReport
)

// NewController wraps the simulator with a reconsolidation loop that re-packs
// the live fleet every `every` intervals.
func NewController(p *Placement, table *MappingTable, cfg SimConfig, strategy QueuingFFD, every int, rng *rand.Rand) (*Controller, error) {
	return sim.NewController(p, table, cfg, strategy, every, rng)
}

// NewSimulator builds a simulator over a clone of the placement.
func NewSimulator(p *Placement, table *MappingTable, cfg SimConfig, rng *rand.Rand) (*Simulator, error) {
	return sim.New(p, table, cfg, rng)
}

// Experiments (internal/experiments).

// ExperimentOptions configures a paper-experiment run.
type ExperimentOptions = experiments.Options

// RunExperiment regenerates one paper artifact (e.g. "fig5") to opt.Out.
func RunExperiment(id string, opt ExperimentOptions) error { return experiments.Run(id, opt) }

// RunAllExperiments regenerates every artifact in order.
func RunAllExperiments(opt ExperimentOptions) error { return experiments.RunAll(opt) }

// ListExperiments enumerates the reproducible artifacts.
func ListExperiments() []experiments.Experiment { return experiments.List() }

// ReadFleet decodes and validates a fleet spec from JSON.
func ReadFleet(r io.Reader) (*Fleet, error) { return cloud.ReadFleet(r) }

// Constraint checkers (internal/cloud).
var (
	// CheckPeak verifies Σ R_p ≤ C on every used PM.
	CheckPeak = cloud.CheckPeak
	// CheckNormal verifies Σ R_b ≤ C on every used PM.
	CheckNormal = cloud.CheckNormal
	// CheckReserved verifies Eq. (17) on every used PM.
	CheckReserved = cloud.CheckReserved
)
