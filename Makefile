# Development entry points for the repro module. Everything is standard
# library only; the targets below are the same commands CI / reviewers run.

GO ?= go

.PHONY: all build test vet race bench bench-baseline cover clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-bearing packages: the telemetry
# registry/tracer (hammered from parallel workers) and the experiment runner.
race:
	$(GO) test -race ./internal/telemetry/... ./internal/experiments/... .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the committed benchmark baseline (root-package harness only,
# one short iteration set — a smoke baseline, not a rigorous comparison).
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json . > BENCH_baseline.json

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
