# Development entry points for the repro module. Everything is standard
# library only; the targets below are the same commands CI / reviewers run.

GO ?= go

.PHONY: all build test vet race bench bench-baseline bench-pr2 bench-pr4 bench-pr5 bench-smoke bench-compare bench-compare-pr5 loadgen-smoke fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-bearing packages: the telemetry
# registry/tracer (hammered from parallel workers), the experiment runner's
# parallel table builds, the goroutine-safe solve cache and table cache in
# queuing, the shared log-factorial table in markov, the solver scratch in
# linalg, the sharded simulator step loop in sim, and the group-commit
# admission service in placesvc (equivalence + concurrent churn + snapshots).
race:
	$(GO) test -race ./internal/telemetry/... ./internal/experiments/... \
		./internal/queuing/... ./internal/markov/... ./internal/linalg/... \
		./internal/sim/... ./internal/placesvc/... .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the committed benchmark baseline (root-package harness only,
# one short iteration set — a smoke baseline, not a rigorous comparison).
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json . > BENCH_baseline.json

# Snapshot of the fast-path solve engine's numbers, committed next to the
# baseline so bench-compare can verify the speedup (and catch regressions).
bench-pr2:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json . > BENCH_pr2.json

# Snapshot of the fleet-scale engine's numbers (incremental ledger + indexed
# placement + sharded stepping) across the 10k/100k/1M ladder. The linear
# placer is skipped at 1M by the benchmark itself.
bench-pr4:
	SCALE_BENCH_FULL=1 $(GO) test -run '^$$' -bench 'BenchmarkScale' -benchmem \
		-benchtime 1x -timeout 60m -json ./internal/sim/ ./internal/core/ > BENCH_pr4.json

# Snapshot of the admission-service numbers: BenchmarkServeAdmit (1/4/16
# clients) vs BenchmarkSerialAdmit across the 1k/10k/100k PM ladder, plus a
# loadgen throughput line in the same test2json dialect. Note the concurrency
# speedup only shows on a multi-core runner; a single-core box measures the
# queue-hop overhead instead.
bench-pr5:
	SCALE_BENCH_FULL=1 $(GO) test -run '^$$' -bench 'Admit' -benchmem \
		-benchtime 10000x -timeout 30m -json ./internal/placesvc/ > BENCH_pr5.json
	$(GO) run ./cmd/loadgen -pms 1000 -clients 4 -ops 20000 -bench >> BENCH_pr5.json

# Quick scale smoke (n = 10k only) — the CI guard that the scale paths keep
# working without paying for the full ladder.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkScale' -benchmem -benchtime 1x \
		./internal/sim/ ./internal/core/

# Loadgen smoke: a short concurrent serving run (1k PMs, 4 clients) — the CI
# guard that the admission service sustains concurrent clients end to end.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -pms 1000 -clients 4 -ops 10000

# Diff two committed benchmark snapshots. Fails when a critical benchmark
# (Fig7 MapCal or MappingTable, by default) regresses by more than 20%.
# Pass DIFFFLAGS=-allocs to additionally flag >20% allocs/op growth on the
# critical set (requires -benchmem snapshots, which all committed ones are).
OLD ?= BENCH_baseline.json
NEW ?= BENCH_pr2.json
DIFFFLAGS ?=
bench-compare:
	$(GO) run ./cmd/benchdiff -old $(OLD) -new $(NEW) $(DIFFFLAGS)

# Gate the admission path against its committed snapshot: >20% ns/op or
# allocs/op regression on the Admit/Loadgen benchmarks fails the target.
bench-compare-pr5: BENCH_pr5_new.json
	$(GO) run ./cmd/benchdiff -old BENCH_pr5.json -new BENCH_pr5_new.json \
		-critical 'BenchmarkServeAdmit|BenchmarkSerialAdmit|BenchmarkLoadgen' -allocs

# Fresh measurement of the admission benchmarks for bench-compare-pr5 (not
# committed; delete after comparing).
BENCH_pr5_new.json:
	SCALE_BENCH_FULL=1 $(GO) test -run '^$$' -bench 'Admit' -benchmem \
		-benchtime 10000x -timeout 30m -json ./internal/placesvc/ > $@
	$(GO) run ./cmd/loadgen -pms 1000 -clients 4 -ops 20000 -bench >> $@

# Short fuzz smoke of the solver-agreement, MapCal, and fault-plan contracts.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSolverAgreement -fuzztime 10s ./internal/queuing/
	$(GO) test -run '^$$' -fuzz FuzzMapCal -fuzztime 10s ./internal/queuing/
	$(GO) test -run '^$$' -fuzz FuzzFaultPlan -fuzztime 10s ./internal/faults/

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
