# Development entry points for the repro module. Everything is standard
# library only; the targets below are the same commands CI / reviewers run.

GO ?= go

.PHONY: all build test vet race bench bench-baseline bench-pr2 bench-pr4 bench-pr5 bench-pr6 bench-pr7 bench-pr9 bench-pr10 bench-smoke bench-compare bench-compare-pr5 bench-compare-pr6 bench-compare-pr7 bench-compare-pr9 bench-compare-pr10 loadgen-smoke metrics-smoke fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-bearing packages: the telemetry
# registry/tracer (hammered from parallel workers), the experiment runner's
# parallel table builds, the goroutine-safe solve cache and table cache in
# queuing, the shared log-factorial table in markov, the solver scratch in
# linalg, the sharded simulator step loop in sim, the group-commit admission
# service in placesvc (equivalence + concurrent churn + snapshots + the
# lock-free op ring and Workers fan-out), the parallel rescore ranges in core,
# the bulk-filled segment trees in fitindex, the observability plane in
# obs (flight-recorder emit/dump, window merges), and the federated placement
# plane in shardsvc (power-of-d routing over lock-free snapshots, owner-map
# reconciliation, background rebalancer vs concurrent churn).
race:
	$(GO) test -race ./internal/telemetry/... ./internal/experiments/... \
		./internal/queuing/... ./internal/markov/... ./internal/linalg/... \
		./internal/sim/... ./internal/placesvc/... ./internal/core/... \
		./internal/fitindex/... ./internal/obs/... ./internal/admission/... \
		./internal/shardsvc/... .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the committed benchmark baseline (root-package harness only,
# one short iteration set — a smoke baseline, not a rigorous comparison).
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json . > BENCH_baseline.json

# Snapshot of the fast-path solve engine's numbers, committed next to the
# baseline so bench-compare can verify the speedup (and catch regressions).
bench-pr2:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json . > BENCH_pr2.json

# Snapshot of the fleet-scale engine's numbers (incremental ledger + indexed
# placement + sharded stepping) across the 10k/100k/1M ladder. The linear
# placer is skipped at 1M by the benchmark itself.
bench-pr4:
	SCALE_BENCH_FULL=1 $(GO) test -run '^$$' -bench 'BenchmarkScale' -benchmem \
		-benchtime 1x -timeout 60m -json ./internal/sim/ ./internal/core/ > BENCH_pr4.json

# Snapshot of the admission-service numbers: BenchmarkServeAdmit (1/4/16
# clients) vs BenchmarkSerialAdmit across the 1k/10k/100k PM ladder, plus a
# loadgen throughput line in the same test2json dialect. Note the concurrency
# speedup only shows on a multi-core runner; a single-core box measures the
# queue-hop overhead instead.
bench-pr5:
	SCALE_BENCH_FULL=1 $(GO) test -run '^$$' -bench 'Admit' -benchmem \
		-benchtime 10000x -timeout 30m -json ./internal/placesvc/ > BENCH_pr5.json
	$(GO) run ./cmd/loadgen -pms 1000 -clients 4 -ops 20000 -bench >> BENCH_pr5.json

# Snapshot of the observability-plane overhead: the obs-sensitive hot paths
# (BenchmarkScaleStep, BenchmarkServeAdmit) measured obs-off into
# BENCH_pr6_off.json and obs-on (OBS_BENCH=1 attaches a full obs.Plane to the
# same benchmarks, same names) into BENCH_pr6.json. bench-compare-pr6 diffs
# the pair; the acceptance bar is single-digit-percent obs-on overhead.
# The off and on runs are interleaved (three alternating rounds, -count 2
# each) and benchfmt keeps the fastest run per name, so the comparison is
# minimum-vs-minimum across rounds taken under the same machine conditions.
# Measuring one side entirely before the other instead lets clock/neighbor
# drift on a shared box masquerade as obs overhead — the second side measures
# uniformly slower regardless of the code under test.
PR6BENCH = $(GO) test -run '^$$' -bench 'BenchmarkScaleStep|BenchmarkServeAdmit' \
	-benchmem -benchtime 500x -count 2 -timeout 10m -json ./internal/sim/ ./internal/placesvc/
bench-pr6:
	rm -f BENCH_pr6_off.json BENCH_pr6.json
	for i in 1 2 3; do \
		$(PR6BENCH) >> BENCH_pr6_off.json && \
		OBS_BENCH=1 $(PR6BENCH) >> BENCH_pr6.json || exit 1; \
	done

# Gate the obs-on overhead against the obs-off snapshot: >20% ns/op regression
# on the obs-sensitive benchmarks fails the target. ns/op only: attaching the
# plane adds a small fixed number of allocations per *step* (boxing one
# StepEvent for the tracer, ~5 allocs against a 10k-VM sweep), which is
# negligible in absolute terms but an unbounded percentage of the tiny
# obs-off baseline, so an allocs gate would always trip on it.
bench-compare-pr6:
	$(GO) run ./cmd/benchdiff -old BENCH_pr6_off.json -new BENCH_pr6.json \
		-critical 'BenchmarkScaleStep|BenchmarkServeAdmit'

# GOMAXPROCS matrix for the multi-core hot paths: BenchmarkScaleStep (sharded
# simulation), BenchmarkServeAdmit (parallel committer, Workers = GOMAXPROCS)
# and BenchmarkBatchApply (explicit workers sub-dimension) at -cpu 1,4,8, plus
# loadgen throughput lines at GOMAXPROCS 1/4/8. The testing package tags every
# non-single-proc level with a -P name suffix, which benchfmt parses into a
# procs dimension — one snapshot holds the whole matrix without key
# collisions, and the single-proc level keeps the key every older snapshot
# used. Rounds are interleaved (three rounds, -count 2 each) and benchfmt
# keeps the fastest run per (name, procs) key, so comparisons are
# minimum-vs-minimum under the same machine conditions — the same
# drift-resistance rationale as bench-pr6. On a single-core host the >1
# levels measure oversubscribed scheduling, not parallel speedup; record the
# matrix on a multi-core runner for meaningful cross-level deltas.
PR7BENCH = $(GO) test -run '^$$' -bench 'BenchmarkScaleStep|BenchmarkServeAdmit|BenchmarkBatchApply' \
	-benchmem -benchtime 100x -count 2 -cpu 1,4,8 -timeout 30m -json ./internal/sim/ ./internal/placesvc/
define PR7RUN
	rm -f $(1)
	for i in 1 2 3; do \
		$(PR7BENCH) >> $(1) || exit 1; \
	done
	for p in 1 4 8; do \
		GOMAXPROCS=$$p $(GO) run ./cmd/loadgen -pms 1000 -clients 4 -ops 20000 -bench >> $(1) || exit 1; \
	done
endef
bench-pr7:
	$(call PR7RUN,BENCH_pr7.json)

# Federated-plane snapshot: BenchmarkShardAdmit sweeps the shard ladder
# (1/2/4/8 shards × 1/4/16 clients at 1k PMs; shards=1 is the single-committer
# baseline the federation must not tax), BenchmarkRouterPick isolates the
# power-of-d draw, and loadgen throughput lines at -shards 1 and -shards 4
# carry the end-to-end rejected-frac metric. Rounds are interleaved (three
# rounds, -count 2 each) and benchfmt keeps the fastest run per name — the
# same drift-resistance rationale as bench-pr6/pr7. On a single-core host the
# multi-shard levels measure routing overhead, not parallel committer speedup;
# record on a multi-core runner for meaningful cross-shard deltas.
PR9BENCH = $(GO) test -run '^$$' -bench 'BenchmarkShardAdmit|BenchmarkRouterPick' \
	-benchmem -benchtime 2000x -count 2 -timeout 30m -json ./internal/shardsvc/
define PR9RUN
	rm -f $(1)
	for i in 1 2 3; do \
		$(PR9BENCH) >> $(1) || exit 1; \
	done
	for s in 1 4; do \
		$(GO) run ./cmd/loadgen -pms 1000 -clients 4 -ops 20000 -shards $$s -bench >> $(1) || exit 1; \
	done
endef
bench-pr9:
	$(call PR9RUN,BENCH_pr9.json)

# Gate the federated plane against the committed snapshot: >20% ns/op or
# allocs/op regression on ShardAdmit/Loadgen fails the target, and so does a
# >5% absolute rejected-frac increase on the loadgen lines (the federation may
# not buy throughput by shedding more work).
bench-compare-pr9: BENCH_pr9_new.json
	$(GO) run ./cmd/benchdiff -old BENCH_pr9.json -new BENCH_pr9_new.json \
		-critical 'BenchmarkShardAdmit|BenchmarkLoadgen' -allocs \
		-max-regress 0.20 -max-shed-regress 0.05

# Fresh measurement of the federated benchmarks for bench-compare-pr9 (not
# committed; delete after comparing).
BENCH_pr9_new.json:
	$(call PR9RUN,$@)

# Transient-engine snapshot (PR 10): BenchmarkTransientClosedForm sweeps
# k ∈ {16,64,256} × t ∈ {10,10³,10⁶} (each iteration a cold closed-form
# forecast — the t-rows must be flat, demonstrating t-independence),
# BenchmarkTransientMatrix runs the O(t·k²) oracle on the horizons it can
# afford (its t=10³ row against the closed form's is the ≥100× headline;
# t=10⁶ is omitted — minutes per op is the point of the closed form), and
# BenchmarkForecastCurve/BenchmarkForecastCacheHit cover the batched
# autoscaler query and the steady-state cache hit. The fast and oracle sets
# need very different -benchtime budgets, so each round runs them as two
# invocations; rounds are interleaved (three rounds, -count 2 each) and
# benchfmt keeps the fastest run per name — the same drift-resistance
# rationale as bench-pr6/pr7/pr9.
PR10FAST = $(GO) test -run '^$$' -bench 'BenchmarkTransientClosedForm|BenchmarkForecast' \
	-benchmem -benchtime 1000x -count 2 -timeout 30m -json ./internal/queuing/
PR10ORACLE = $(GO) test -run '^$$' -bench 'BenchmarkTransientMatrix' \
	-benchmem -benchtime 3x -count 2 -timeout 30m -json ./internal/queuing/
define PR10RUN
	rm -f $(1)
	for i in 1 2 3; do \
		$(PR10FAST) >> $(1) && \
		$(PR10ORACLE) >> $(1) || exit 1; \
	done
endef
bench-pr10:
	$(call PR10RUN,BENCH_pr10.json)

# Gate the transient engine against the committed snapshot: >20% ns/op or
# allocs/op regression on any transient/forecast benchmark fails the target.
bench-compare-pr10: BENCH_pr10_new.json
	$(GO) run ./cmd/benchdiff -old BENCH_pr10.json -new BENCH_pr10_new.json \
		-critical 'BenchmarkTransient|BenchmarkForecast' -allocs

# Fresh measurement of the transient benchmarks for bench-compare-pr10 (not
# committed; delete after comparing).
BENCH_pr10_new.json:
	$(call PR10RUN,$@)

# Gate the multi-core hot paths against the committed matrix: >20% ns/op or
# allocs/op regression on any (benchmark, procs) level fails the target.
bench-compare-pr7: BENCH_pr7_new.json
	$(GO) run ./cmd/benchdiff -old BENCH_pr7.json -new BENCH_pr7_new.json \
		-critical 'BenchmarkScaleStep|BenchmarkServeAdmit|BenchmarkBatchApply|BenchmarkLoadgen' -allocs

# Fresh measurement of the matrix for bench-compare-pr7 (not committed;
# delete after comparing).
BENCH_pr7_new.json:
	$(call PR7RUN,$@)

# Quick scale smoke (n = 10k only) — the CI guard that the scale paths keep
# working without paying for the full ladder. Pinned to -cpu 1 so the smoke
# stays single-core and comparable across runners; the multi-core story is
# bench-pr7's job.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkScale' -benchmem -benchtime 1x -cpu 1 \
		./internal/sim/ ./internal/core/

# Loadgen smoke: a short concurrent serving run (1k PMs, 4 clients) — the CI
# guard that the admission service sustains concurrent clients end to end.
# The second run fronts the same pool with a 4-shard federation (power-of-d
# routing + background rebalancer) so the federated plane gets the same
# end-to-end guard.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -pms 1000 -clients 4 -ops 10000
	$(GO) run ./cmd/loadgen -pms 1000 -clients 4 -ops 10000 -shards 4

# Metrics smoke: scrape /metrics (exposition-conformance-checked), hit
# /debug/flight and /debug/pprof during a live loadgen run — the CI guard for
# the observability endpoints. Runs via the scrape-during-run test so the
# scrape happens while the service is serving.
metrics-smoke:
	$(GO) test -run TestMetricsScrapeDuringRun -v ./cmd/loadgen/

# Diff two committed benchmark snapshots. Fails when a critical benchmark
# (Fig7 MapCal or MappingTable, by default) regresses by more than 20%.
# Pass DIFFFLAGS=-allocs to additionally flag >20% allocs/op growth on the
# critical set (requires -benchmem snapshots, which all committed ones are).
OLD ?= BENCH_baseline.json
NEW ?= BENCH_pr2.json
DIFFFLAGS ?=
bench-compare:
	$(GO) run ./cmd/benchdiff -old $(OLD) -new $(NEW) $(DIFFFLAGS)

# Gate the admission path against its committed snapshot: >20% ns/op or
# allocs/op regression on the Admit/Loadgen benchmarks fails the target.
bench-compare-pr5: BENCH_pr5_new.json
	$(GO) run ./cmd/benchdiff -old BENCH_pr5.json -new BENCH_pr5_new.json \
		-critical 'BenchmarkServeAdmit|BenchmarkSerialAdmit|BenchmarkLoadgen' -allocs

# Fresh measurement of the admission benchmarks for bench-compare-pr5 (not
# committed; delete after comparing).
BENCH_pr5_new.json:
	SCALE_BENCH_FULL=1 $(GO) test -run '^$$' -bench 'Admit' -benchmem \
		-benchtime 10000x -timeout 30m -json ./internal/placesvc/ > $@
	$(GO) run ./cmd/loadgen -pms 1000 -clients 4 -ops 20000 -bench >> $@

# Short fuzz smoke of the solver-agreement, transient-agreement, MapCal,
# fault-plan, and admission-config contracts.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSolverAgreement -fuzztime 10s ./internal/queuing/
	$(GO) test -run '^$$' -fuzz FuzzTransientAgreement -fuzztime 10s ./internal/queuing/
	$(GO) test -run '^$$' -fuzz FuzzMapCal -fuzztime 10s ./internal/queuing/
	$(GO) test -run '^$$' -fuzz FuzzFaultPlan -fuzztime 10s ./internal/faults/
	$(GO) test -run '^$$' -fuzz FuzzAdmissionConfig -fuzztime 10s ./internal/admission/

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
