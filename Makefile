# Development entry points for the repro module. Everything is standard
# library only; the targets below are the same commands CI / reviewers run.

GO ?= go

.PHONY: all build test vet race bench bench-baseline bench-pr2 bench-compare fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-bearing packages: the telemetry
# registry/tracer (hammered from parallel workers), the experiment runner's
# parallel table builds, the goroutine-safe solve cache in queuing, the
# shared log-factorial table in markov, and the solver scratch in linalg.
race:
	$(GO) test -race ./internal/telemetry/... ./internal/experiments/... \
		./internal/queuing/... ./internal/markov/... ./internal/linalg/... .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the committed benchmark baseline (root-package harness only,
# one short iteration set — a smoke baseline, not a rigorous comparison).
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json . > BENCH_baseline.json

# Snapshot of the fast-path solve engine's numbers, committed next to the
# baseline so bench-compare can verify the speedup (and catch regressions).
bench-pr2:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json . > BENCH_pr2.json

# Diff two committed benchmark snapshots. Fails when a critical benchmark
# (Fig7 MapCal or MappingTable, by default) regresses by more than 20%.
OLD ?= BENCH_baseline.json
NEW ?= BENCH_pr2.json
bench-compare:
	$(GO) run ./cmd/benchdiff -old $(OLD) -new $(NEW)

# Short fuzz smoke of the solver-agreement, MapCal, and fault-plan contracts.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSolverAgreement -fuzztime 10s ./internal/queuing/
	$(GO) test -run '^$$' -fuzz FuzzMapCal -fuzztime 10s ./internal/queuing/
	$(GO) test -run '^$$' -fuzz FuzzFaultPlan -fuzztime 10s ./internal/faults/

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
