# Development entry points for the repro module. Everything is standard
# library only; the targets below are the same commands CI / reviewers run.

GO ?= go

.PHONY: all build test vet race bench bench-baseline bench-pr2 bench-pr4 bench-smoke bench-compare fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-bearing packages: the telemetry
# registry/tracer (hammered from parallel workers), the experiment runner's
# parallel table builds, the goroutine-safe solve cache in queuing, the
# shared log-factorial table in markov, the solver scratch in linalg, and
# the sharded simulator step loop in sim.
race:
	$(GO) test -race ./internal/telemetry/... ./internal/experiments/... \
		./internal/queuing/... ./internal/markov/... ./internal/linalg/... \
		./internal/sim/... .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the committed benchmark baseline (root-package harness only,
# one short iteration set — a smoke baseline, not a rigorous comparison).
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json . > BENCH_baseline.json

# Snapshot of the fast-path solve engine's numbers, committed next to the
# baseline so bench-compare can verify the speedup (and catch regressions).
bench-pr2:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json . > BENCH_pr2.json

# Snapshot of the fleet-scale engine's numbers (incremental ledger + indexed
# placement + sharded stepping) across the 10k/100k/1M ladder. The linear
# placer is skipped at 1M by the benchmark itself.
bench-pr4:
	SCALE_BENCH_FULL=1 $(GO) test -run '^$$' -bench 'BenchmarkScale' -benchmem \
		-benchtime 1x -timeout 60m -json ./internal/sim/ ./internal/core/ > BENCH_pr4.json

# Quick scale smoke (n = 10k only) — the CI guard that the scale paths keep
# working without paying for the full ladder.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkScale' -benchmem -benchtime 1x \
		./internal/sim/ ./internal/core/

# Diff two committed benchmark snapshots. Fails when a critical benchmark
# (Fig7 MapCal or MappingTable, by default) regresses by more than 20%.
# Pass DIFFFLAGS=-allocs to additionally flag >20% allocs/op growth on the
# critical set (requires -benchmem snapshots, which all committed ones are).
OLD ?= BENCH_baseline.json
NEW ?= BENCH_pr2.json
DIFFFLAGS ?=
bench-compare:
	$(GO) run ./cmd/benchdiff -old $(OLD) -new $(NEW) $(DIFFFLAGS)

# Short fuzz smoke of the solver-agreement, MapCal, and fault-plan contracts.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSolverAgreement -fuzztime 10s ./internal/queuing/
	$(GO) test -run '^$$' -fuzz FuzzMapCal -fuzztime 10s ./internal/queuing/
	$(GO) test -run '^$$' -fuzz FuzzFaultPlan -fuzztime 10s ./internal/faults/

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
